"""Portfolio executors: serial and multiprocess.

Both executors run the identical start list (:meth:`Portfolio.jobs`)
and produce records in start-index order, so the cut set of a portfolio
is a pure function of its seed — the determinism contract the tests
pin down as ``run_cell(jobs=1) == run_cell(jobs=4)``.

The process executor uses the ``fork`` start method and ships only
``(index, seed, attempt)`` tuples to workers; the portfolio itself
(netlist, algorithm closures, any prebuilt hierarchy) is inherited
through the fork, so nothing in it needs to pickle.  Where ``fork`` is
unavailable (e.g. Windows), :func:`get_executor` degrades to the serial
executor with a warning rather than failing the sweep.

Fault model
-----------
* A start that **raises** is caught (in the worker, or in the parent
  for serial runs) and recorded ``failed``; failed starts are
  re-executed up to ``retries`` times, sleeping the portfolio's
  deterministic backoff schedule between attempts.
* A start that **exceeds the wall-clock budget** is recorded
  ``timeout`` and its worker is killed at pool shutdown; timeouts are
  never retried (a hung worker already cost a pool slot).  The serial
  executor cannot pre-empt, so it flags the overrun after the fact —
  both executors demote through the same :func:`_flag_overrun` path,
  so an overrun start is a ``timeout`` at any worker count.
* A **worker that dies** without returning (``os._exit``, segfault) is
  detected through the start-notice channel: every pool task announces
  ``(index, attempt, pid)`` before running, and the collector probes
  that pid while waiting, so a dead worker is recorded ``failed``
  (and retried) within one poll interval instead of burning the whole
  collection deadline.  The pool respawns a replacement; the sweep
  always completes.
* A start whose returned solution **fails verification**
  (``portfolio.verify``) is recorded ``invalid`` and retried like a
  failure; its cut never reaches the statistics.

Fault *injection* (``portfolio.faults``) happens inside
:func:`_execute_start` — worker-side under the pool — so an armed plan
produces byte-identical outcome fingerprints serially and in parallel.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError, ReproError
from ..faults import FaultInjector
from ..obs import (BufferRecorder, BufferTracer, MetricsRegistry,
                   get_logger, metrics, record_result, recorder,
                   recording, set_metrics, set_recorder, set_tracer,
                   tracer, trace_scope, tracing)
from ..obs.profile import memory_peak
from .job import Job, Portfolio
from .records import (PortfolioResult, RunRecord,
                      STATUS_FAILED, STATUS_OK, STATUS_TIMEOUT)

_log = get_logger("runtime.executor")

__all__ = ["SerialExecutor", "ProcessExecutor", "get_executor", "execute",
           "DEFAULT_COLLECT_TIMEOUT"]

#: Upper bound on how long the collector waits for any one outstanding
#: start when the portfolio has no ``budget_seconds`` of its own.  A
#: *finite* default is deliberate: with ``timeout=None`` a hung worker
#: would block ``handle.get()`` — and the whole sweep — forever.
DEFAULT_COLLECT_TIMEOUT = 3600.0

#: Collector poll granularity: how often, while waiting on a result,
#: the parent checks the start-notice channel for dead workers.
_POLL_INTERVAL = 0.05

OnRecord = Optional[Callable[[RunRecord], None]]
Completed = Optional[Dict[int, RunRecord]]


def _verify_result(portfolio: Portfolio, result: object) -> Optional[str]:
    """Trust-but-verify: recompute the solution's objectives from scratch.

    Uses the *reference* kernels (never the CSR twins), so with the CSR
    kernels active this doubles as a cross-mode oracle: any divergence
    between the two implementations surfaces as an ``invalid`` record.
    Returns an error message, or ``None`` when the result checks out.
    """
    partition = getattr(result, "partition", None)
    if partition is None:
        return "verify: result exposes no partition to check"
    from ..kernels import use_kernels
    from ..partition.balance import BalanceConstraint
    from ..partition.objectives import cut as reference_cut
    try:
        with use_kernels("reference"):
            recomputed = reference_cut(portfolio.hg, partition)
        reported = getattr(result, "cut", None)
        if recomputed != reported:
            return (f"verify: reported cut {reported} != recomputed cut "
                    f"{recomputed}")
        tolerance = portfolio.verify
        if isinstance(tolerance, float) and not isinstance(tolerance, bool):
            constraint = BalanceConstraint.from_tolerance(
                portfolio.hg, tolerance, k=partition.k)
            areas = partition.part_areas(portfolio.hg)
            if not constraint.is_feasible(areas):
                return (f"verify: part areas "
                        f"{[round(a, 2) for a in areas]} violate balance "
                        f"tolerance r={tolerance:g}")
    except ReproError as exc:
        return f"verify: recomputation failed: {exc}"
    return None


def _execute_start(portfolio: Portfolio, index: int, seed: int,
                   attempt: int, worker: str,
                   in_worker: bool = False) -> RunRecord:
    """Run one start, converting any exception into a failed record.

    Backoff for retries is slept here — before the timed section, in
    whichever process runs the start — so the schedule is identical
    under both executors (under the pool it does, however, count
    toward the parent's collection deadline).

    When called ``in_worker`` with an enabled ambient tracer/metrics
    registry (both inherited through the fork), the singletons are
    swapped for in-memory collectors for the duration of the start and
    the collected telemetry is shipped back on the record — the only
    path events take out of a worker, since the real writer's file
    handle must not be shared across the fork.
    """
    tr = tracer()
    mx = metrics()
    rc = recorder()
    buffer = parent_tracer = None
    registry = parent_metrics = None
    rec_buffer = parent_recorder = None
    if in_worker and tr.enabled:
        buffer = BufferTracer()
        parent_tracer = set_tracer(buffer)
        tr = buffer
    if in_worker and mx.enabled:
        registry = MetricsRegistry()
        parent_metrics = set_metrics(registry)
        mx = registry
    if in_worker and rc.enabled:
        # Decisions buffer per start like trace events do: the real
        # writer's file handle must not be shared across the fork, and
        # buffering keeps each start's block contiguous in the file.
        rec_buffer = BufferRecorder()
        parent_recorder = set_recorder(rec_buffer)
        rc = rec_buffer
    if rc.enabled:
        from ..kernels import kernel_mode
        rc.emit({"t": "start", "i": index, "seed": seed,
                 "mode": kernel_mode(), "alg": portfolio.name})
    # Request-scoped correlation: every event below (this function's
    # spans and everything portfolio.fn emits) carries the portfolio's
    # trace_id.  Entered by hand because the exits interleave with the
    # singleton restores at the bottom.
    scope = trace_scope(trace_id=portfolio.trace_id)
    scope.__enter__()
    if attempt > 1:
        delay = portfolio.backoff_delay(index, attempt)
        if delay > 0.0:
            if tr.enabled:
                tr.instant("portfolio.backoff", {
                    "index": index, "attempt": attempt,
                    "delay_s": round(delay, 4)})
            time.sleep(delay)
    injector = (FaultInjector(portfolio.faults)
                if portfolio.faults is not None else None)
    t_start = tr.begin() if tr.enabled else 0
    mem = memory_peak()
    mem.__enter__()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        corrupting = (injector.fire(index, attempt, in_worker=in_worker)
                      if injector is not None else None)
        if corrupting is not None and tr.enabled:
            tr.instant("portfolio.fault", {
                "index": index, "attempt": attempt,
                "kind": str(corrupting)})
        result = portfolio.fn(portfolio.hg, seed)
        partition = getattr(result, "partition", None)
        if rc.enabled and partition is not None:
            # Footer records what the algorithm computed — before any
            # injected corruption, which is a downstream fault, not a
            # decision.  The replay engine re-measures this cut and
            # matches the assignment bit for bit.
            rc.emit({"t": "result", "i": index, "cut": result.cut,
                     "assign": "".join(
                         "1" if side else "0"
                         for side in partition.assignment)})
        if corrupting is not None:
            result = injector.corrupt(corrupting, index, attempt,
                                      portfolio.hg, result)
        record = RunRecord(
            index=index, seed=seed, status=STATUS_OK, cut=result.cut,
            result=result if portfolio.keep_results else None)
        if portfolio.verify:
            error = _verify_result(portfolio, result)
            if error is not None:
                record.mark_invalid(error)
                _log.warning("start %d (seed %d, attempt %d): %s",
                             index, seed, attempt, error)
                if tr.enabled:
                    tr.instant("portfolio.verify_failed", {
                        "index": index, "attempt": attempt,
                        "error": error})
    except Exception as exc:
        record = RunRecord(
            index=index, seed=seed, status=STATUS_FAILED,
            error="".join(traceback.format_exception_only(exc)).strip())
    record.wall_seconds = time.perf_counter() - wall0
    record.cpu_seconds = time.process_time() - cpu0
    mem.__exit__()
    record.worker = worker
    record.attempts = attempt
    record.peak_mem_bytes = mem.peak_bytes
    if tr.enabled:
        span_args = {
            "index": index, "seed": seed, "attempt": attempt,
            "status": record.status, "cut": record.cut, "worker": worker}
        if mem.peak_bytes is not None:
            span_args["peak_mem_bytes"] = mem.peak_bytes
        tr.end("portfolio.start", t_start, span_args)
    if mx.enabled:
        mx.counter("repro_portfolio_starts_total",
                   "Portfolio starts executed, by outcome.",
                   status=record.status).inc()
        mx.histogram("repro_portfolio_start_seconds",
                     "Wall time of individual portfolio starts."
                     ).observe(record.wall_seconds)
        if mem.peak_bytes is not None:
            mx.gauge("repro_portfolio_peak_mem_bytes",
                     "Peak tracemalloc bytes of the most recently "
                     "profiled start.").set(mem.peak_bytes)
    scope.__exit__()
    if buffer is not None:
        set_tracer(parent_tracer)
        record.trace_events = buffer.drain()
    if registry is not None:
        set_metrics(parent_metrics)
        record.metrics_snapshot = registry.snapshot()
    if rec_buffer is not None:
        set_recorder(parent_recorder)
        record.record_events = rec_buffer.drain()
    return record


def _flag_overrun(record: RunRecord, budget: Optional[float]) -> bool:
    """Demote a completed-but-overrun start to ``timeout``.

    The single budget-flagging path for both executors: the serial
    executor cannot pre-empt at all, and the pool's collector can race
    a start that finishes just past its budget — either way the record
    ends up identical to one whose worker was killed mid-flight.
    """
    if record.ok and budget is not None and record.wall_seconds > budget:
        record.mark_timeout(f"exceeded budget of {budget:g}s "
                            f"({record.wall_seconds:.2f}s)")
        return True
    return False


def _deadline_record(portfolio: Portfolio, index: int, seed: int,
                     attempt: int, worker: str) -> RunRecord:
    """Record for a start sacrificed to the portfolio deadline.

    Shared by both executors so a deadline-killed start looks identical
    whether it never launched (serial) or its worker was terminated
    mid-flight (pool): a ``timeout`` record whose error names the
    portfolio deadline.
    """
    tr = tracer()
    if tr.enabled:
        tr.instant("portfolio.deadline", {
            "index": index, "attempt": attempt,
            "deadline_s": portfolio.deadline_seconds})
    return RunRecord(
        index=index, seed=seed, status=STATUS_OK, worker=worker,
        attempts=attempt,
    ).mark_timeout(
        f"portfolio deadline of {portfolio.deadline_seconds:g}s "
        "exhausted before this start completed")


class SerialExecutor:
    """Runs starts in order, in-process — the harness's historical
    behaviour plus fault isolation and budget flagging."""

    jobs = 1

    def run(self, portfolio: Portfolio, completed: Completed = None,
            on_record: OnRecord = None) -> PortfolioResult:
        wall0 = time.perf_counter()
        deadline_at = (wall0 + portfolio.deadline_seconds
                       if portfolio.deadline_seconds is not None else None)
        completed = dict(completed or {})
        records: List[RunRecord] = []
        for job in portfolio.jobs():
            if job.index in completed:
                records.append(completed[job.index])
                continue
            if deadline_at is not None and \
                    time.perf_counter() >= deadline_at:
                record = _deadline_record(portfolio, job.index, job.seed,
                                          1, worker="serial")
            else:
                record = self._run_with_retries(portfolio, job, deadline_at)
            if on_record is not None:
                on_record(record)
            records.append(record)
        return PortfolioResult(
            algorithm=portfolio.name, circuit=portfolio.hg.name,
            records=records, wall_seconds=time.perf_counter() - wall0,
            jobs=1)

    def _run_with_retries(self, portfolio: Portfolio, job: Job,
                          deadline_at: Optional[float] = None) -> RunRecord:
        attempt = 1
        while True:
            record = _execute_start(portfolio, job.index, job.seed,
                                    attempt, worker="serial")
            _flag_overrun(record, portfolio.budget_seconds)
            if not record.retryable or attempt > portfolio.retries \
                    or (deadline_at is not None
                        and time.perf_counter() >= deadline_at):
                return record
            _log.info("retrying start %d (seed %d): %s on attempt %d — %s",
                      job.index, job.seed, record.status, attempt,
                      record.error)
            attempt += 1


# Portfolio being executed by the current pool; workers inherit this
# through fork, so the netlist and algorithm never cross a pipe.
_ACTIVE: Optional[Portfolio] = None

# Start-notice channel: workers announce (index, attempt, pid) before
# running a task, letting the parent tell a dead worker (pid gone,
# record failed, retry) from a hung one (pid alive, record timeout).
_NOTICES = None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _pool_worker_init() -> None:
    """Restore default signal handling in a freshly forked pool worker.

    The service daemon's asyncio loop installs ``SIGTERM``/``SIGINT``
    handlers and a signal wakeup fd, both of which survive the fork.  A
    worker that keeps them swallows the ``SIGTERM`` that
    ``Pool.terminate()`` sends (the handler only writes to the parent's
    wakeup pipe), so pool shutdown blocks forever — observed as the
    daemon wedging on its second request with ``--jobs 2``.  Cheap and
    harmless when the parent never touched signals.
    """
    import signal
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass


def _pool_run(task: Tuple[int, int, int]) -> RunRecord:
    index, seed, attempt = task
    assert _ACTIVE is not None, "worker forked without an active portfolio"
    if _NOTICES is not None:
        _NOTICES.put((index, attempt, os.getpid()))
    return _execute_start(_ACTIVE, index, seed, attempt,
                          worker=f"pid:{os.getpid()}", in_worker=True)


class ProcessExecutor:
    """Fans starts out to a fork-based worker pool.

    ``budget_seconds`` (from the portfolio) bounds how long the parent
    waits on each outstanding start while collecting — **measured from
    the moment collection of that record begins, not from task
    dispatch** (records are collected in submission order, so an
    earlier slow start extends the wall-clock grace of later ones; it
    never shrinks it).  With no budget the wait is still finite
    (:data:`DEFAULT_COLLECT_TIMEOUT`), so a hung worker can delay a
    sweep but never wedge it.  A start that blows the deadline is
    recorded as a timeout and its worker is killed when the pool shuts
    down.  Failed (raising or dead-worker) and invalid (verification)
    starts are resubmitted up to ``retries`` times; timeouts are not
    retried — a hung worker already costs a pool slot.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ConfigError(f"ProcessExecutor needs jobs >= 2, got {jobs}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                "ProcessExecutor requires the 'fork' start method")
        self.jobs = jobs

    def run(self, portfolio: Portfolio, completed: Completed = None,
            on_record: OnRecord = None) -> PortfolioResult:
        global _ACTIVE, _NOTICES
        wall0 = time.perf_counter()
        deadline_at = (wall0 + portfolio.deadline_seconds
                       if portfolio.deadline_seconds is not None else None)
        records: Dict[int, RunRecord] = dict(completed or {})
        pending = [(job.index, job.seed, 1) for job in portfolio.jobs()
                   if job.index not in records]
        if pending:
            context = multiprocessing.get_context("fork")
            _ACTIVE = portfolio
            _NOTICES = context.SimpleQueue()
            started: Dict[Tuple[int, int], int] = {}
            timed_out = False
            try:
                with context.Pool(processes=self.jobs,
                                  initializer=_pool_worker_init) as pool:
                    while pending:
                        inflight = [(task,
                                     pool.apply_async(_pool_run, (task,)))
                                    for task in pending]
                        pending = []
                        for task, handle in inflight:
                            index, seed, attempt = task
                            record = self._collect(portfolio, handle, index,
                                                   seed, attempt, started,
                                                   deadline_at)
                            self._absorb(record)
                            timed_out |= record.status == STATUS_TIMEOUT
                            if (record.retryable
                                    and attempt <= portfolio.retries
                                    and (deadline_at is None
                                         or time.perf_counter()
                                         < deadline_at)):
                                _log.info("retrying start %d (seed %d): %s "
                                          "on attempt %d — %s",
                                          index, seed, record.status,
                                          attempt, record.error)
                                pending.append((index, seed, attempt + 1))
                                continue
                            records[index] = record
                            if on_record is not None:
                                on_record(record)
                    if timed_out:
                        # Hung workers never return; don't join them.
                        pool.terminate()
            finally:
                _ACTIVE = None
                _NOTICES = None
        ordered = [records[i] for i in sorted(records)]
        return PortfolioResult(
            algorithm=portfolio.name, circuit=portfolio.hg.name,
            records=ordered, wall_seconds=time.perf_counter() - wall0,
            jobs=self.jobs)

    @staticmethod
    def _absorb(record: RunRecord) -> None:
        """Merge telemetry shipped back from a worker into the parent's
        sinks, then clear the transport fields.

        Runs for *every* collected record — including retried attempts,
        whose outcome record is discarded but whose telemetry (the
        failed span, the fault instant) belongs in the trace.  Events
        carry raw machine-wide monotonic timestamps, so re-emitting
        them through the parent's writer lands them at the correct
        offsets in the merged timeline.
        """
        if record.trace_events:
            tr = tracer()
            if tr.enabled:
                for event in record.trace_events:
                    tr.emit(event)
        record.trace_events = None
        if record.metrics_snapshot:
            mx = metrics()
            if mx.enabled:
                mx.merge(record.metrics_snapshot)
        record.metrics_snapshot = None
        if record.record_events:
            rc = recorder()
            if rc.enabled:
                emit_block = getattr(rc, "emit_block", None)
                if emit_block is not None:
                    emit_block(record.record_events)
                else:
                    for event in record.record_events:
                        rc.emit(event)
        record.record_events = None

    @staticmethod
    def _drain_notices(started: Dict[Tuple[int, int], int]) -> None:
        queue = _NOTICES
        if queue is None:
            return
        while not queue.empty():
            index, attempt, pid = queue.get()
            started[(index, attempt)] = pid

    @classmethod
    def _collect(cls, portfolio: Portfolio, handle, index: int, seed: int,
                 attempt: int, started: Dict[Tuple[int, int], int],
                 deadline_at: Optional[float] = None) -> RunRecord:
        """Wait for one outstanding start, with a finite deadline.

        The per-start deadline — ``budget_seconds`` or, when the
        portfolio has none, :data:`DEFAULT_COLLECT_TIMEOUT` — is
        measured from the start of *this collection*, not from task
        dispatch.  ``deadline_at`` (an absolute ``perf_counter`` time)
        additionally bounds the whole portfolio: once it passes, every
        uncollected start is recorded as a deadline timeout without
        further waiting, and the caller terminates the pool — killing
        in-flight workers — on the timeout flag.  While waiting, the
        collector polls the start-notice channel: a task whose
        announced worker pid has vanished is recorded ``failed``
        (worker died — retryable) immediately, instead of masquerading
        as a timeout after the full deadline.
        """
        budget = portfolio.budget_seconds
        deadline = budget if budget is not None else DEFAULT_COLLECT_TIMEOUT
        waited = 0.0
        while True:
            cls._drain_notices(started)
            if deadline_at is not None and \
                    time.perf_counter() >= deadline_at:
                _log.warning("portfolio deadline exhausted; recording "
                             "start %d (seed %d, attempt %d) as timeout",
                             index, seed, attempt)
                return _deadline_record(portfolio, index, seed, attempt,
                                        worker="pool")
            step = min(_POLL_INTERVAL, max(deadline - waited, 0.001))
            if deadline_at is not None:
                step = min(step,
                           max(deadline_at - time.perf_counter(), 0.001))
            try:
                record = handle.get(timeout=step)
            except multiprocessing.TimeoutError:
                waited += step
                cls._drain_notices(started)
                pid = started.get((index, attempt))
                if pid is not None and not _pid_alive(pid):
                    _log.warning("worker pid %d died before returning "
                                 "start %d (seed %d, attempt %d)",
                                 pid, index, seed, attempt)
                    tr = tracer()
                    if tr.enabled:
                        tr.instant("portfolio.worker_death", {
                            "index": index, "attempt": attempt,
                            "worker_pid": pid})
                    return RunRecord(
                        index=index, seed=seed, status=STATUS_OK,
                        wall_seconds=waited, worker=f"pid:{pid}",
                        attempts=attempt,
                    ).mark_failed(
                        f"worker pid {pid} died before returning")
                if waited >= deadline:
                    _log.warning("start %d (seed %d, attempt %d) produced "
                                 "no result within %gs; recorded timeout",
                                 index, seed, attempt, deadline)
                    tr = tracer()
                    if tr.enabled:
                        tr.instant("portfolio.timeout", {
                            "index": index, "attempt": attempt,
                            "deadline_s": deadline})
                    return RunRecord(
                        index=index, seed=seed, status=STATUS_OK,
                        wall_seconds=waited, worker="pool",
                        attempts=attempt,
                    ).mark_timeout(
                        f"no result within {deadline:g}s of collection "
                        "(deadline runs from collection start, not task "
                        "dispatch)")
            except Exception as exc:
                # The worker died in a way the pool itself reported.
                _log.warning("pool reported start %d (seed %d, attempt %d) "
                             "failed: %s", index, seed, attempt, exc)
                return RunRecord(
                    index=index, seed=seed, status=STATUS_OK,
                    worker="pool", attempts=attempt,
                ).mark_failed("".join(
                    traceback.format_exception_only(exc)).strip())
            else:
                _flag_overrun(record, budget)
                return record


def get_executor(jobs: int = 1, executor=None):
    """Resolve the ``jobs=``/``executor=`` knobs to an executor.

    An explicit ``executor`` object wins; otherwise ``jobs == 1`` is
    serial and ``jobs > 1`` a fork pool of that width (falling back to
    serial, with a warning, on platforms without ``fork``).
    """
    if executor is not None:
        return executor
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    try:
        return ProcessExecutor(jobs)
    except ConfigError as exc:
        _log.warning("parallel execution unavailable (%s); running "
                     "serially", exc)
        warnings.warn(f"parallel execution unavailable ({exc}); "
                      "running serially", RuntimeWarning, stacklevel=2)
        return SerialExecutor()


def execute(portfolio: Portfolio, jobs: int = 1, executor=None,
            completed: Completed = None,
            on_record: OnRecord = None) -> PortfolioResult:
    """Run ``portfolio`` on the executor selected by ``jobs``/``executor``.

    ``completed`` maps start indices to already-finished records (from
    a checkpoint); those starts are not re-run.  ``on_record`` is
    invoked in the parent for every *newly* finished record — the
    checkpoint streaming hook.

    When ``portfolio.trace`` is a path, the whole run — worker events
    included — is written there as a Chrome trace-event stream and the
    previous ambient tracer is restored afterwards.  ``portfolio.record``
    behaves the same way for the decision recording
    (:mod:`repro.obs.recorder`).

    Every completed execution is recorded in the run ledger
    (:mod:`repro.obs.ledger`) unless ``REPRO_LEDGER=off``; when a trace
    file was written, its per-phase rollup rides along in the entry.
    """
    from contextlib import ExitStack
    runner = get_executor(jobs, executor)
    trace_path = portfolio.trace if isinstance(portfolio.trace, str) else None
    record_path = (portfolio.record
                   if isinstance(portfolio.record, str) else None)
    with ExitStack() as sinks:
        if trace_path is not None:
            sinks.enter_context(tracing(trace_path))
        if record_path is not None:
            sinks.enter_context(recording(record_path))
        result = runner.run(portfolio, completed=completed,
                            on_record=on_record)
    # After the tracing context closes, so phase rollups read a
    # flushed, complete file.
    record_result(result, portfolio, jobs=runner.jobs,
                  trace_path=trace_path)
    return result
