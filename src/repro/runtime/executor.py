"""Portfolio executors: serial and multiprocess.

Both executors run the identical start list (:meth:`Portfolio.jobs`)
and produce records in start-index order, so the cut set of a portfolio
is a pure function of its seed — the determinism contract the tests
pin down as ``run_cell(jobs=1) == run_cell(jobs=4)``.

The process executor uses the ``fork`` start method and ships only
``(index, seed, attempt)`` tuples to workers; the portfolio itself
(netlist, algorithm closures, any prebuilt hierarchy) is inherited
through the fork, so nothing in it needs to pickle.  Where ``fork`` is
unavailable (e.g. Windows), :func:`get_executor` degrades to the serial
executor with a warning rather than failing the sweep.

Fault model: a start that raises is caught (in the worker, or in the
parent for serial runs) and recorded as a failed run; a start that
exceeds the portfolio's wall-clock budget is recorded as a timeout and
its worker is killed at pool shutdown.  The sweep always completes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from typing import List, Optional, Tuple

from ..errors import ConfigError
from .job import Job, Portfolio
from .records import (PortfolioResult, RunRecord,
                      STATUS_FAILED, STATUS_OK, STATUS_TIMEOUT)

__all__ = ["SerialExecutor", "ProcessExecutor", "get_executor", "execute"]


def _execute_start(portfolio: Portfolio, index: int, seed: int,
                   attempt: int, worker: str) -> RunRecord:
    """Run one start, converting any exception into a failed record."""
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        result = portfolio.fn(portfolio.hg, seed)
        record = RunRecord(
            index=index, seed=seed, status=STATUS_OK, cut=result.cut,
            result=result if portfolio.keep_results else None)
    except Exception as exc:
        record = RunRecord(
            index=index, seed=seed, status=STATUS_FAILED,
            error="".join(traceback.format_exception_only(exc)).strip())
    record.wall_seconds = time.perf_counter() - wall0
    record.cpu_seconds = time.process_time() - cpu0
    record.worker = worker
    record.attempts = attempt
    return record


class SerialExecutor:
    """Runs starts in order, in-process — the harness's historical
    behaviour plus fault isolation and budget flagging."""

    jobs = 1

    def run(self, portfolio: Portfolio) -> PortfolioResult:
        wall0 = time.perf_counter()
        records: List[RunRecord] = []
        for job in portfolio.jobs():
            record = self._run_with_retries(portfolio, job)
            records.append(record)
        return PortfolioResult(
            algorithm=portfolio.name, circuit=portfolio.hg.name,
            records=records, wall_seconds=time.perf_counter() - wall0,
            jobs=1)

    def _run_with_retries(self, portfolio: Portfolio,
                          job: Job) -> RunRecord:
        attempt = 1
        while True:
            record = _execute_start(portfolio, job.index, job.seed,
                                    attempt, worker="serial")
            budget = portfolio.budget_seconds
            if (record.ok and budget is not None
                    and record.wall_seconds > budget):
                # Cannot pre-empt in-process; flag the overrun so stats
                # match what a killing executor would have reported.
                record.status = STATUS_TIMEOUT
                record.cut = None
                record.result = None
                record.error = (f"exceeded budget of {budget:g}s "
                                f"({record.wall_seconds:.2f}s)")
            if record.status != STATUS_FAILED or attempt > portfolio.retries:
                return record
            attempt += 1


# Portfolio being executed by the current pool; workers inherit this
# through fork, so the netlist and algorithm never cross a pipe.
_ACTIVE: Optional[Portfolio] = None


def _pool_run(task: Tuple[int, int, int]) -> RunRecord:
    index, seed, attempt = task
    assert _ACTIVE is not None, "worker forked without an active portfolio"
    return _execute_start(_ACTIVE, index, seed, attempt,
                          worker=f"pid:{os.getpid()}")


class ProcessExecutor:
    """Fans starts out to a fork-based worker pool.

    ``budget_seconds`` (from the portfolio) bounds how long the parent
    waits on each outstanding start while collecting, measured per
    ``get``; a start that blows it is recorded as a timeout and its
    worker is killed when the pool shuts down.  Failed (raising) starts
    are resubmitted up to ``retries`` times; timeouts are not retried —
    a hung worker already costs a pool slot.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ConfigError(f"ProcessExecutor needs jobs >= 2, got {jobs}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                "ProcessExecutor requires the 'fork' start method")
        self.jobs = jobs

    def run(self, portfolio: Portfolio) -> PortfolioResult:
        global _ACTIVE
        wall0 = time.perf_counter()
        context = multiprocessing.get_context("fork")
        _ACTIVE = portfolio
        timed_out = False
        records = {}
        try:
            with context.Pool(processes=self.jobs) as pool:
                pending = [(job.index, job.seed, 1)
                           for job in portfolio.jobs()]
                while pending:
                    inflight = [(task, pool.apply_async(_pool_run, (task,)))
                                for task in pending]
                    pending = []
                    for task, handle in inflight:
                        index, seed, attempt = task
                        record = self._collect(portfolio, handle, index,
                                               seed, attempt)
                        timed_out |= record.status == STATUS_TIMEOUT
                        if (record.status == STATUS_FAILED
                                and attempt <= portfolio.retries):
                            pending.append((index, seed, attempt + 1))
                            continue
                        records[index] = record
                if timed_out:
                    # Hung workers never return; don't join them.
                    pool.terminate()
        finally:
            _ACTIVE = None
        ordered = [records[i] for i in sorted(records)]
        return PortfolioResult(
            algorithm=portfolio.name, circuit=portfolio.hg.name,
            records=ordered, wall_seconds=time.perf_counter() - wall0,
            jobs=self.jobs)

    @staticmethod
    def _collect(portfolio: Portfolio, handle, index: int, seed: int,
                 attempt: int) -> RunRecord:
        try:
            return handle.get(timeout=portfolio.budget_seconds)
        except multiprocessing.TimeoutError:
            return RunRecord(
                index=index, seed=seed, status=STATUS_TIMEOUT,
                wall_seconds=portfolio.budget_seconds or 0.0,
                worker="pool", attempts=attempt,
                error=f"no result within {portfolio.budget_seconds:g}s")
        except Exception as exc:
            # The worker died before returning (segfault, os._exit, ...).
            return RunRecord(
                index=index, seed=seed, status=STATUS_FAILED,
                worker="pool", attempts=attempt,
                error="".join(
                    traceback.format_exception_only(exc)).strip())


def get_executor(jobs: int = 1, executor=None):
    """Resolve the ``jobs=``/``executor=`` knobs to an executor.

    An explicit ``executor`` object wins; otherwise ``jobs == 1`` is
    serial and ``jobs > 1`` a fork pool of that width (falling back to
    serial, with a warning, on platforms without ``fork``).
    """
    if executor is not None:
        return executor
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    try:
        return ProcessExecutor(jobs)
    except ConfigError as exc:
        warnings.warn(f"parallel execution unavailable ({exc}); "
                      "running serially", RuntimeWarning, stacklevel=2)
        return SerialExecutor()


def execute(portfolio: Portfolio, jobs: int = 1,
            executor=None) -> PortfolioResult:
    """Run ``portfolio`` on the executor selected by ``jobs``/``executor``."""
    return get_executor(jobs, executor).run(portfolio)
