"""Hierarchy-reusing multi-start ML portfolios.

:func:`ml_portfolio` is the runtime's answer to the paper's Table IV-VII
protocol: coarsen a circuit once per (config, seed), then fan N
refinement starts out to the executor.  The shared hierarchy is built
from the portfolio seed, so the result is deterministic and identical
at any worker count; it differs from N fully independent
``ml_bipartition`` runs (which would each coarsen with their own start
seed), trading that per-start coarsening diversity for an N-fold
reduction in coarsening work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.config import MLConfig
from ..core.ml import Hierarchy, ml_bipartition
from ..hypergraph import Hypergraph
from ..rng import SeedLike
from .cache import HierarchyCache, default_hierarchy_cache
from .executor import execute
from .job import Portfolio
from .records import PortfolioResult

__all__ = ["MLStartAlgorithm", "ml_reuse_algorithm", "ml_portfolio"]


@dataclass(frozen=True)
class MLStartAlgorithm:
    """An ``Algorithm``-shaped runner bound to a prebuilt hierarchy."""

    name: str
    fn: Callable[[Hypergraph, int], object]


def ml_reuse_algorithm(config: Optional[MLConfig] = None,
                       hierarchy: Optional[Hierarchy] = None,
                       name: Optional[str] = None) -> MLStartAlgorithm:
    """ML starts that refine ``hierarchy`` instead of re-coarsening.

    With ``hierarchy=None`` each start coarsens for itself (identical
    to plain ``ml_bipartition``), which keeps one code path for both
    modes.
    """
    config = config or MLConfig()
    label = name or ("ML{}(R={:g})".format(
        "C" if config.engine == "clip" else "F", config.matching_ratio))

    def run(hg: Hypergraph, seed: int):
        return ml_bipartition(hg, config=config, seed=seed,
                              hierarchy=hierarchy)

    return MLStartAlgorithm(name=label, fn=run)


def ml_portfolio(hg: Hypergraph, runs: int,
                 config: Optional[MLConfig] = None,
                 seed: SeedLike = 0,
                 jobs: int = 1,
                 cache: Optional[HierarchyCache] = None,
                 budget_seconds: Optional[float] = None,
                 retries: int = 0,
                 keep_results: bool = False,
                 executor=None) -> PortfolioResult:
    """``runs`` ML starts on ``hg``, coarsening once and refining many.

    The hierarchy comes from ``cache`` (the process-wide default when
    omitted), keyed on ``(hg, config, seed)``: repeated portfolios on
    the same cell — e.g. a table sweep re-run at several ratios — reuse
    it across calls, not just across starts.
    """
    config = config or MLConfig()
    cache = cache if cache is not None else default_hierarchy_cache
    hierarchy = cache.get(hg, config, seed)
    algorithm = ml_reuse_algorithm(config, hierarchy)
    portfolio = Portfolio(algorithm=algorithm, hg=hg, runs=runs, seed=seed,
                          budget_seconds=budget_seconds, retries=retries,
                          keep_results=keep_results)
    return execute(portfolio, jobs=jobs, executor=executor)
