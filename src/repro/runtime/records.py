"""Structured results of portfolio execution.

A portfolio run produces one :class:`RunRecord` per start — success or
not — and a :class:`PortfolioResult` aggregating them.  Records keep
both wall-clock and CPU time (the paper's Table VIII reports CPU
seconds; earlier versions of the harness conflated the two) plus enough
provenance (seed, worker, attempts) to re-run any individual start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from ..errors import HarnessError

if TYPE_CHECKING:  # pragma: no cover
    from ..harness.runner import CellStats

__all__ = ["RunRecord", "PortfolioResult",
           "STATUS_OK", "STATUS_FAILED", "STATUS_TIMEOUT"]

#: The start returned a result.
STATUS_OK = "ok"
#: The start raised; ``error`` holds the formatted exception.
STATUS_FAILED = "failed"
#: The start exceeded its wall-clock budget (parallel executors kill
#: the worker; the serial executor can only flag it after the fact).
STATUS_TIMEOUT = "timeout"


@dataclass
class RunRecord:
    """Outcome of one seeded start of a portfolio.

    ``cut`` and ``result`` are ``None`` unless ``status == "ok"``
    (``result`` additionally requires the portfolio's ``keep_results``).
    ``attempts`` counts executions including retries; ``worker``
    identifies who ran it (``"serial"`` or ``"pid:<n>"``).
    """

    index: int
    seed: int
    status: str
    cut: Optional[int] = None
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    worker: str = "serial"
    error: Optional[str] = None
    attempts: int = 1
    result: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class PortfolioResult:
    """All records of one portfolio, in start-index order.

    The cut list over successful runs is a pure function of the seed
    sequence, so it is identical at any worker count; only the timing
    fields vary between executors.
    """

    algorithm: str
    circuit: str
    records: List[RunRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    jobs: int = 1

    @property
    def runs(self) -> int:
        return len(self.records)

    @property
    def ok_records(self) -> List[RunRecord]:
        return [r for r in self.records if r.ok]

    @property
    def failures(self) -> List[RunRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def cuts(self) -> List[int]:
        """Cuts of the successful runs, in start-index order."""
        return [r.cut for r in self.ok_records]

    @property
    def cpu_seconds(self) -> float:
        """Total CPU time over all runs (summed across workers)."""
        return sum(r.cpu_seconds for r in self.records)

    @property
    def best(self) -> RunRecord:
        """The successful record with the minimum cut."""
        ok = self.ok_records
        if not ok:
            raise HarnessError(
                f"all {self.runs} runs of {self.algorithm!r} on "
                f"{self.circuit!r} failed; no best record")
        return min(ok, key=lambda r: (r.cut, r.index))

    def to_cell_stats(self) -> "CellStats":
        """Aggregate into the harness's per-table-cell statistics."""
        from ..harness.runner import CellStats
        return CellStats(algorithm=self.algorithm, circuit=self.circuit,
                         cuts=self.cuts, cpu_seconds=self.cpu_seconds,
                         wall_seconds=self.wall_seconds,
                         failures=len(self.failures))

    def summary(self) -> str:
        """One log line: ``MLC on struct: 9/10 ok, min 61, 2.1s wall``."""
        ok = self.ok_records
        min_cut = min((r.cut for r in ok), default=None)
        return (f"{self.algorithm} on {self.circuit}: "
                f"{len(ok)}/{self.runs} ok, min "
                f"{'-' if min_cut is None else min_cut}, "
                f"{self.wall_seconds:.2f}s wall / "
                f"{self.cpu_seconds:.2f}s cpu, jobs={self.jobs}")
