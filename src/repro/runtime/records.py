"""Structured results of portfolio execution.

A portfolio run produces one :class:`RunRecord` per start — success or
not — and a :class:`PortfolioResult` aggregating them.  Records keep
both wall-clock and CPU time (the paper's Table VIII reports CPU
seconds; earlier versions of the harness conflated the two) plus enough
provenance (seed, worker, attempts) to re-run any individual start.

Status transitions are centralised here: executors build records in the
``ok``/``failed`` states and demote them through the ``mark_*`` methods
(one auditable code path for every ``status``/``error`` change), so the
serial and pool executors cannot drift apart in how they flag the same
fault.  Records round-trip through :meth:`RunRecord.to_json_dict` /
:meth:`RunRecord.from_json_dict` for the sweep checkpoint (the full
``result`` object is deliberately not persisted — a checkpoint stores
outcomes, not partitions).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import HarnessError

if TYPE_CHECKING:  # pragma: no cover
    from ..harness.runner import CellStats

__all__ = ["RunRecord", "PortfolioResult", "FailureReport",
           "fingerprint_digest", "FINGERPRINT_DIGEST_LENGTH",
           "STATUS_OK", "STATUS_FAILED", "STATUS_TIMEOUT", "STATUS_INVALID",
           "RETRYABLE_STATUSES"]

#: Hex digits kept from the SHA-256 of a fingerprint.  Shared by the
#: run ledger and the service result cache so the two always agree on
#: what "the fingerprint of a run" means.
FINGERPRINT_DIGEST_LENGTH = 16


def fingerprint_digest(fingerprint: str,
                       length: int = FINGERPRINT_DIGEST_LENGTH) -> str:
    """SHA-256 hex digest (truncated) of a fingerprint string.

    The one hashing convention for outcome identity: the ledger keys
    entries on it, the service caches results under it, and
    ``repro ledger``/``compare`` tooling matches runs by it.  Pinned by
    a golden-value test — changing this silently would orphan every
    recorded ledger entry.
    """
    return hashlib.sha256(
        fingerprint.encode("utf-8")).hexdigest()[:length]

#: The start returned a result.
STATUS_OK = "ok"
#: The start raised (or its worker died); ``error`` holds the details.
STATUS_FAILED = "failed"
#: The start exceeded its wall-clock budget (parallel executors kill
#: the worker; the serial executor can only flag it after the fact).
STATUS_TIMEOUT = "timeout"
#: The start returned a result that failed trust-but-verify
#: recomputation (wrong cut, infeasible balance): treated like a
#: failure — retried, and never aggregated into cut statistics.
STATUS_INVALID = "invalid"

#: Statuses the executors re-run (budget overruns are not retried —
#: a hung worker already cost its pool slot).
RETRYABLE_STATUSES = (STATUS_FAILED, STATUS_INVALID)

#: Fields persisted to / restored from a checkpoint line, in order.
_JSON_FIELDS = ("index", "seed", "status", "cut", "wall_seconds",
                "cpu_seconds", "worker", "error", "attempts")


@dataclass
class RunRecord:
    """Outcome of one seeded start of a portfolio.

    ``cut`` and ``result`` are ``None`` unless ``status == "ok"``
    (``result`` additionally requires the portfolio's ``keep_results``).
    ``attempts`` counts executions including retries; ``worker``
    identifies who ran it (``"serial"`` or ``"pid:<n>"``).
    """

    index: int
    seed: int
    status: str
    cut: Optional[int] = None
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    worker: str = "serial"
    error: Optional[str] = None
    attempts: int = 1
    result: Optional[object] = None
    #: Trace events collected in a worker process, shipped back over
    #: the result channel for the parent to merge into its trace; the
    #: parent clears the field after absorbing them.  Never persisted
    #: to checkpoints (a checkpoint stores outcomes, not telemetry).
    trace_events: Optional[List[Dict[str, object]]] = None
    #: Same transport for a worker's metrics-registry snapshot.
    metrics_snapshot: Optional[Dict[str, object]] = None
    #: Same transport for a worker's decision recording: the start's
    #: buffered recorder events, re-emitted by the parent as one
    #: contiguous block so recordings stay seed-stable modulo
    #: start-block order.
    record_events: Optional[List[Dict[str, object]]] = None
    #: Peak tracemalloc bytes over this start, captured only when
    #: memory profiling is enabled (``repro serve --profile-dir`` or
    #: :func:`repro.obs.profile.enable_memory_profiling`).  Not part of
    #: the checkpoint round-trip: telemetry, not an outcome.
    peak_mem_bytes: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def retryable(self) -> bool:
        return self.status in RETRYABLE_STATUSES

    # -- status transitions (the only places records are demoted) ------

    def mark_timeout(self, message: str) -> "RunRecord":
        """Demote to ``timeout``, discarding any overrun result."""
        self.status = STATUS_TIMEOUT
        self.cut = None
        self.result = None
        self.error = message
        return self

    def mark_invalid(self, message: str) -> "RunRecord":
        """Demote to ``invalid``: the returned solution failed
        verification and must never reach cut statistics."""
        self.status = STATUS_INVALID
        self.cut = None
        self.result = None
        self.error = message
        return self

    def mark_failed(self, message: str) -> "RunRecord":
        """Demote to ``failed`` (e.g. the worker died before returning)."""
        self.status = STATUS_FAILED
        self.cut = None
        self.result = None
        self.error = message
        return self

    # -- checkpoint round-trip -----------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (drops the in-memory ``result``)."""
        return {name: getattr(self, name) for name in _JSON_FIELDS}

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "RunRecord":
        try:
            return cls(**{name: data[name] for name in _JSON_FIELDS})
        except KeyError as exc:
            raise HarnessError(
                f"checkpoint record is missing field {exc}") from None


@dataclass
class FailureReport:
    """Structured account of a portfolio's non-surviving starts."""

    algorithm: str
    circuit: str
    total: int
    by_status: Dict[str, int]
    failures: List[Dict[str, object]] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return self.total - self.by_status.get(STATUS_OK, 0)

    def render(self) -> str:
        """Multi-line human-readable report."""
        counts = ", ".join(f"{status}={n}"
                           for status, n in sorted(self.by_status.items()))
        lines = [f"{self.algorithm} on {self.circuit}: "
                 f"{self.failed}/{self.total} starts lost ({counts})"]
        for f in self.failures:
            lines.append(f"  start {f['index']} (seed {f['seed']}): "
                         f"{f['status']} after {f['attempts']} attempt(s)"
                         f" — {f['error']}")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {"algorithm": self.algorithm, "circuit": self.circuit,
                "total": self.total, "by_status": dict(self.by_status),
                "failures": list(self.failures)}


@dataclass
class PortfolioResult:
    """All records of one portfolio, in start-index order.

    The cut list over successful runs is a pure function of the seed
    sequence, so it is identical at any worker count; only the timing
    fields vary between executors.
    """

    algorithm: str
    circuit: str
    records: List[RunRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    jobs: int = 1

    @property
    def runs(self) -> int:
        return len(self.records)

    @property
    def ok_records(self) -> List[RunRecord]:
        return [r for r in self.records if r.ok]

    @property
    def failures(self) -> List[RunRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def ok_fraction(self) -> float:
        """Surviving fraction of the portfolio (1.0 when empty)."""
        return len(self.ok_records) / self.runs if self.runs else 1.0

    @property
    def cuts(self) -> List[int]:
        """Cuts of the successful runs, in start-index order."""
        return [r.cut for r in self.ok_records]

    @property
    def cpu_seconds(self) -> float:
        """Total CPU time over all runs (summed across workers)."""
        return sum(r.cpu_seconds for r in self.records)

    @property
    def peak_mem_bytes(self) -> Optional[int]:
        """Largest per-start tracemalloc peak, or ``None`` when memory
        profiling was off for the whole portfolio."""
        peaks = [r.peak_mem_bytes for r in self.records
                 if r.peak_mem_bytes is not None]
        return max(peaks) if peaks else None

    @property
    def best(self) -> RunRecord:
        """The successful record with the minimum cut."""
        ok = self.ok_records
        if not ok:
            raise HarnessError(
                f"all {self.runs} runs of {self.algorithm!r} on "
                f"{self.circuit!r} failed; no best record")
        return min(ok, key=lambda r: (r.cut, r.index))

    def fingerprint(self) -> str:
        """Deterministic digest of the portfolio's *outcomes*.

        One line per record — ``index:seed:status:cut:attempts`` — plus
        a header.  Everything scheduling-dependent (timings, worker
        ids, error text) is excluded, so the fingerprint is the
        byte-identical-across-worker-counts contract: the same
        ``(seed, fault plan)`` must produce the same fingerprint at
        ``jobs=1`` and ``jobs=N``, and a resumed sweep the same
        fingerprint as an uninterrupted one.
        """
        lines = [f"{self.algorithm}|{self.circuit}|runs={self.runs}"]
        lines += [f"{r.index}:{r.seed}:{r.status}:{r.cut}:{r.attempts}"
                  for r in self.records]
        return "\n".join(lines)

    def fingerprint_digest(self) -> str:
        """The truncated SHA-256 of :meth:`fingerprint` — the form the
        ledger records and the service cache keys on."""
        return fingerprint_digest(self.fingerprint())

    def failure_report(self) -> FailureReport:
        """Structured summary of every non-surviving start."""
        by_status: Dict[str, int] = {}
        for r in self.records:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        return FailureReport(
            algorithm=self.algorithm, circuit=self.circuit,
            total=self.runs, by_status=by_status,
            failures=[{"index": r.index, "seed": r.seed,
                       "status": r.status, "attempts": r.attempts,
                       "error": r.error}
                      for r in self.failures])

    def require_quorum(self, min_ok_fraction: Optional[float]
                       ) -> "PortfolioResult":
        """Enforce the sweep's survival quorum.

        With ``min_ok_fraction=None`` this is a no-op (the historical
        contract: statistics raise only when *zero* starts survive).
        Otherwise the portfolio must keep at least that fraction of its
        starts; below quorum a :class:`HarnessError` carries the full
        structured failure report.
        """
        if min_ok_fraction is None:
            return self
        if not 0.0 < min_ok_fraction <= 1.0:
            raise HarnessError(
                f"min_ok_fraction must be in (0, 1], got {min_ok_fraction}")
        if self.ok_fraction < min_ok_fraction:
            raise HarnessError(
                f"quorum not met: {len(self.ok_records)}/{self.runs} starts "
                f"survived (< {min_ok_fraction:g})\n"
                + self.failure_report().render())
        return self

    def to_cell_stats(self) -> "CellStats":
        """Aggregate into the harness's per-table-cell statistics."""
        from ..harness.runner import CellStats
        return CellStats(algorithm=self.algorithm, circuit=self.circuit,
                         cuts=self.cuts, cpu_seconds=self.cpu_seconds,
                         wall_seconds=self.wall_seconds,
                         failures=len(self.failures),
                         report=(self.failure_report()
                                 if self.failures else None))

    def summary(self) -> str:
        """One log line: ``MLC on struct: 9/10 ok, min 61, 2.1s wall``."""
        ok = self.ok_records
        min_cut = min((r.cut for r in ok), default=None)
        return (f"{self.algorithm} on {self.circuit}: "
                f"{len(ok)}/{self.runs} ok, min "
                f"{'-' if min_cut is None else min_cut}, "
                f"{self.wall_seconds:.2f}s wall / "
                f"{self.cpu_seconds:.2f}s cpu, jobs={self.jobs}")
