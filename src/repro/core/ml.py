"""The ML multilevel partitioning algorithm (Figure 2).

``ML`` coarsens the netlist with ``Match``/``Induce`` while it has more
than ``T`` modules, partitions the coarsest netlist with
``FMPartition`` from a random start, then uncoarsens with
``Project`` + ``FMPartition`` refinement at every level.  The matching
ratio ``R`` controls coarsening speed and therefore the number of
levels — the paper's key mechanism for giving the refinement engine
more opportunities (Section III).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..clustering import Clustering, induce, match
from ..errors import ClusteringError
from ..hypergraph import Hypergraph
from ..obs import metrics, recorder, tracer
from ..partition import Partition, cut
from ..rng import SeedLike, make_rng, spawn
from ..fm.clip import clip_bipartition  # noqa: F401  (re-export convenience)
from ..fm.engine import fm_bipartition
from ..clustering.project import project
from .config import MLConfig

__all__ = ["MLResult", "ml_bipartition", "build_hierarchy", "Hierarchy"]


@dataclass
class Hierarchy:
    """The coarsening hierarchy ``H_0 .. H_m`` with its clusterings.

    ``netlists[i+1]`` is induced from ``netlists[i]`` by
    ``clusterings[i]``; ``len(netlists) == len(clusterings) + 1``.
    """

    netlists: List[Hypergraph]
    clusterings: List[Clustering]

    @property
    def levels(self) -> int:
        """``m``: the number of coarsening steps taken."""
        return len(self.clusterings)

    @property
    def coarsest(self) -> Hypergraph:
        return self.netlists[-1]

    def module_counts(self) -> List[int]:
        """``|V_i|`` per level, finest first."""
        return [h.num_modules for h in self.netlists]


@dataclass
class MLResult:
    """Outcome of one ML run."""

    partition: Partition
    cut: int
    levels: int
    level_sizes: List[int]
    level_cuts: List[int] = field(default_factory=list)
    total_passes: int = 0


def build_hierarchy(hg: Hypergraph, config: Optional[MLConfig] = None,
                    seed: SeedLike = None,
                    rng: Optional[random.Random] = None) -> Hierarchy:
    """The coarsening phase (Steps 1-5 of Figure 2).

    Coarsening stops at ``T`` modules, at ``max_levels``, or when a
    matching step fails to shrink the netlist (which can happen when
    every remaining module is isolated from the others — continuing
    would loop forever).

    Exactly one value is drawn from the caller's ``rng``/``seed`` stream
    to seed a private coarsening stream.  This makes the hierarchy a
    substitutable artifact: ``ml_bipartition(hg, seed=s)`` and
    ``ml_bipartition(hg, hierarchy=build_hierarchy(hg, config, seed=s),
    seed=s)`` consume identical refinement streams and therefore return
    identical results (the contract the parallel runtime's hierarchy
    cache relies on).
    """
    config = config or MLConfig()
    base = rng if rng is not None else make_rng(seed)
    rng = spawn(base)
    tr = tracer()
    mx = metrics()
    rec = recorder()
    t_all = tr.begin() if tr.enabled else 0
    m_phase = time.perf_counter() if mx.enabled else 0.0
    netlists = [hg]
    clusterings: List[Clustering] = []
    while (netlists[-1].num_modules > config.coarsening_threshold
           and len(clusterings) < config.max_levels):
        current = netlists[-1]
        t_level = tr.now() if tr.enabled else 0
        clustering = match(current, ratio=config.matching_ratio,
                           scheme=config.matching_scheme, rng=rng)
        if clustering.num_clusters >= current.num_modules:
            break  # no progress: all modules became singletons
        netlists.append(induce(current, clustering))
        clusterings.append(clustering)
        if rec.enabled:
            # Confirms the preceding run of merge events as a kept
            # level (merges of a no-progress matching get no
            # confirmation and are discarded by readers).
            rec.emit({"t": "level", "l": len(clusterings) - 1,
                      "n": current.num_modules,
                      "c": netlists[-1].num_modules,
                      "cn": netlists[-1].num_nets})
        if tr.enabled:
            coarse = netlists[-1]
            tr.complete("coarsen.level", t_level, {
                "level": len(clusterings),
                "modules": current.num_modules,
                "coarse_modules": coarse.num_modules,
                "nets": coarse.num_nets,
                "pins": coarse.num_pins,
                "achieved_ratio": round(clustering.matched_fraction(), 4),
            })
    if tr.enabled:
        tr.end("ml.coarsen", t_all, {
            "levels": len(clusterings),
            "modules": hg.num_modules,
            "coarsest_modules": netlists[-1].num_modules,
            "target_ratio": config.matching_ratio,
        })
    if mx.enabled:
        mx.histogram("repro_ml_phase_seconds",
                     "Wall time of the multilevel phases, by phase.",
                     phase="coarsen"
                     ).observe(time.perf_counter() - m_phase)
    return Hierarchy(netlists=netlists, clusterings=clusterings)


def ml_bipartition(hg: Hypergraph,
                   config: Optional[MLConfig] = None,
                   seed: SeedLike = None,
                   rng: Optional[random.Random] = None,
                   hierarchy: Optional[Hierarchy] = None) -> MLResult:
    """Run the ML multilevel bipartitioning algorithm of Figure 2.

    Returns the refined bipartitioning ``P_0`` of the input netlist; its
    ``cut`` is measured over all nets of ``hg`` (including any the
    refinement engine ignored for size).

    ``hierarchy`` substitutes a prebuilt coarsening hierarchy for the
    coarsening phase (Steps 1-5), so a multi-start portfolio can coarsen
    once and refine many times.  The hierarchy is treated as read-only
    and must have been built over ``hg`` (same finest netlist).  Because
    :func:`build_hierarchy` draws exactly one value from the run's seed
    stream, passing ``hierarchy=build_hierarchy(hg, config, seed=s)``
    together with ``seed=s`` reproduces the fresh-run result exactly.
    """
    config = config or MLConfig()
    rng = rng if rng is not None else make_rng(seed)
    if hg.num_modules < 2:
        raise ClusteringError("cannot bipartition fewer than two modules")
    fm_config = config.engine_config()
    tr = tracer()
    mx = metrics()
    rec = recorder()
    t_run = tr.begin() if tr.enabled else 0

    if hierarchy is None:
        hierarchy = build_hierarchy(hg, config, rng=rng)
    else:
        if not hierarchy.netlists or hierarchy.netlists[0] is not hg and (
                hierarchy.netlists[0].num_modules != hg.num_modules
                or hierarchy.netlists[0].num_nets != hg.num_nets):
            raise ClusteringError(
                "prebuilt hierarchy was not built over this netlist")
        spawn(rng)  # discard the coarsening draw to keep streams aligned

    # Step 6: initial partitioning of the coarsest netlist — optionally
    # several independent starts, keeping the best (Section V).
    t_phase = tr.begin() if tr.enabled else 0
    m_phase = time.perf_counter() if mx.enabled else 0.0
    if rec.enabled:
        rec.level = hierarchy.levels
    result = fm_bipartition(hierarchy.coarsest, initial=None,
                            config=fm_config, rng=rng)
    total_passes = result.passes
    for _ in range(config.coarsest_starts - 1):
        attempt = fm_bipartition(hierarchy.coarsest, initial=None,
                                 config=fm_config, rng=rng)
        total_passes += attempt.passes
        if attempt.cut < result.cut:
            result = attempt
    level_cuts = [result.cut]
    if tr.enabled:
        tr.end("ml.initial", t_phase, {
            "modules": hierarchy.coarsest.num_modules,
            "starts": config.coarsest_starts, "cut": result.cut,
        })
    if mx.enabled:
        mx.histogram("repro_ml_phase_seconds",
                     "Wall time of the multilevel phases, by phase.",
                     phase="initial"
                     ).observe(time.perf_counter() - m_phase)

    # Steps 7-9: project and refine, coarsest-to-finest.
    solution = result.partition
    m_phase = time.perf_counter() if mx.enabled else 0.0
    for i in range(hierarchy.levels - 1, -1, -1):
        t_phase = tr.begin() if tr.enabled else 0
        projected = project(solution, hierarchy.clusterings[i])
        if rec.enabled:
            rec.level = i
        result = fm_bipartition(hierarchy.netlists[i], initial=projected,
                                config=fm_config, rng=rng)
        solution = result.partition
        level_cuts.append(result.cut)
        total_passes += result.passes
        if tr.enabled:
            tr.end("ml.refine.level", t_phase, {
                "level": i,
                "modules": hierarchy.netlists[i].num_modules,
                "cut": result.cut, "passes": result.passes,
            })

    if mx.enabled:
        mx.histogram("repro_ml_phase_seconds",
                     "Wall time of the multilevel phases, by phase.",
                     phase="refine"
                     ).observe(time.perf_counter() - m_phase)

    final_cut = cut(hg, solution)
    if rec.enabled:
        rec.level = -1
    if tr.enabled:
        tr.end("ml.bipartition", t_run, {
            "modules": hg.num_modules, "nets": hg.num_nets,
            "engine": config.engine, "ratio": config.matching_ratio,
            "levels": hierarchy.levels, "cut": final_cut,
            "passes": total_passes,
        })
    return MLResult(partition=solution,
                    cut=final_cut,
                    levels=hierarchy.levels,
                    level_sizes=hierarchy.module_counts(),
                    level_cuts=level_cuts,
                    total_passes=total_passes)
