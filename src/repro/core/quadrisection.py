"""Multilevel quadrisection (Section III-C / IV-D).

The paper extends ML to 4-way partitioning using the Sanchis multi-way
FM engine without lookahead; quadrisection results are reported for the
sum-of-cluster-degrees gain, with ``R = 1.0`` and ``T = 100``.  Modules
(e.g. I/O pads) may be pre-assigned to clusters, which the top-down
placement tool built on this algorithm relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..clustering.project import project
from ..errors import ClusteringError, PartitionError
from ..hypergraph import Hypergraph
from ..partition import Partition, cut, soed
from ..rng import SeedLike, make_rng
from ..fm.kway import kway_partition
from .config import DEFAULT_QUAD_THRESHOLD, MLConfig
from .ml import build_hierarchy

__all__ = ["MLKWayResult", "ml_kway", "ml_quadrisection",
           "default_quad_config"]


@dataclass
class MLKWayResult:
    """Outcome of one multilevel k-way run."""

    partition: Partition
    cut: int
    soed: int
    k: int
    levels: int
    level_sizes: List[int]
    level_cuts: List[int] = field(default_factory=list)


def default_quad_config() -> MLConfig:
    """The paper's Table IX settings: ``R = 1.0``, ``T = 100``, FM engine."""
    return MLConfig(coarsening_threshold=DEFAULT_QUAD_THRESHOLD,
                    matching_ratio=1.0, engine="fm")


def ml_kway(hg: Hypergraph,
            k: int = 4,
            config: Optional[MLConfig] = None,
            objective: str = "soed",
            fixed: Optional[List[int]] = None,
            seed: SeedLike = None,
            rng: Optional[random.Random] = None) -> MLKWayResult:
    """Multilevel k-way partitioning (Figure 2 with a k-way engine).

    ``fixed`` optionally maps module -> pre-assigned part (or ``-1`` for
    free modules); fixed modules are kept out of the matching by being
    pinned through the hierarchy only at the finest level — coarser
    levels refine freely and the pre-assignment is re-imposed before
    the final refinement.
    """
    config = config or default_quad_config()
    rng = rng if rng is not None else make_rng(seed)
    if hg.num_modules < k:
        raise ClusteringError(
            f"cannot {k}-way partition {hg.num_modules} modules")
    if fixed is not None and len(fixed) != hg.num_modules:
        raise PartitionError(
            f"fixed has length {len(fixed)}, expected {hg.num_modules}")
    fm_config = config.engine_config()

    hierarchy = build_hierarchy(hg, config, rng=rng)

    def score(r):
        return r.soed if objective == "soed" else r.cut

    result = kway_partition(hierarchy.coarsest, k=k, initial=None,
                            config=fm_config, objective=objective, rng=rng)
    for _ in range(config.coarsest_starts - 1):
        attempt = kway_partition(hierarchy.coarsest, k=k, initial=None,
                                 config=fm_config, objective=objective,
                                 rng=rng)
        if score(attempt) < score(result):
            result = attempt
    level_cuts = [result.cut]

    solution = result.partition
    for i in range(hierarchy.levels - 1, -1, -1):
        projected = project(solution, hierarchy.clusterings[i])
        finest = i == 0
        lock = None
        if finest and fixed is not None:
            assignment = list(projected.assignment)
            lock = [False] * hg.num_modules
            for v, part in enumerate(fixed):
                if part >= 0:
                    if part >= k:
                        raise PartitionError(
                            f"module {v} pre-assigned to part {part}, "
                            f"but k={k}")
                    assignment[v] = part
                    lock[v] = True
            projected = Partition(assignment, k)
        result = kway_partition(hierarchy.netlists[i], k=k,
                                initial=projected, config=fm_config,
                                objective=objective, rng=rng,
                                fixed=lock)
        solution = result.partition
        level_cuts.append(result.cut)

    return MLKWayResult(partition=solution,
                        cut=cut(hg, solution),
                        soed=soed(hg, solution),
                        k=k,
                        levels=hierarchy.levels,
                        level_sizes=hierarchy.module_counts(),
                        level_cuts=level_cuts)


def ml_quadrisection(hg: Hypergraph,
                     config: Optional[MLConfig] = None,
                     objective: str = "soed",
                     fixed: Optional[List[int]] = None,
                     seed: SeedLike = None,
                     rng: Optional[random.Random] = None) -> MLKWayResult:
    """4-way multilevel partitioning with the paper's defaults."""
    return ml_kway(hg, k=4, config=config, objective=objective,
                   fixed=fixed, seed=seed, rng=rng)
