"""V-cycle iteration: repeated restricted multilevel refinement.

An extension in the spirit of the paper's "more opportunities to refine"
argument, made standard by hMETIS shortly after: given a solution, run
the multilevel engine *again* with coarsening restricted so that only
modules on the same side may merge.  The existing solution is then
representable at every coarse level and seeds the coarsest
partitioning, so each V-cycle can only keep or improve the cut.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..clustering import Clustering, induce, match
from ..clustering.project import project
from ..errors import ClusteringError, ConfigError
from ..hypergraph import Hypergraph
from ..obs import recorder, tracer
from ..partition import Partition, cut
from ..rng import SeedLike, make_rng
from ..fm.engine import fm_bipartition
from .config import MLConfig
from .ml import ml_bipartition

__all__ = ["VCycleResult", "ml_vcycle"]


@dataclass
class VCycleResult:
    """Outcome of an initial ML run plus ``cycles`` V-cycles."""

    partition: Partition
    cut: int
    cycles: int
    cycle_cuts: List[int] = field(default_factory=list)


def _restricted_cycle(hg: Hypergraph, solution: Partition,
                      config: MLConfig, rng: random.Random) -> Partition:
    """One V-cycle: restricted coarsening, seeded uncoarsening."""
    fm_config = config.engine_config()
    rec = recorder()

    netlists = [hg]
    clusterings: List[Clustering] = []
    labels = list(solution.assignment)
    while (netlists[-1].num_modules > config.coarsening_threshold
           and len(clusterings) < config.max_levels):
        current = netlists[-1]
        clustering = match(current, ratio=config.matching_ratio,
                           scheme=config.matching_scheme, rng=rng,
                           restrict=labels)
        if clustering.num_clusters >= current.num_modules:
            break
        netlists.append(induce(current, clustering))
        # Every cluster is pure by construction; carry the labels up.
        new_labels = [0] * clustering.num_clusters
        for v, c in enumerate(clustering.cluster_of):
            new_labels[c] = labels[v]
        clusterings.append(clustering)
        labels = new_labels
        if rec.enabled:
            rec.emit({"t": "level", "l": len(clusterings) - 1,
                      "n": current.num_modules,
                      "c": netlists[-1].num_modules,
                      "cn": netlists[-1].num_nets})

    if rec.enabled:
        rec.level = len(clusterings)
    refined = fm_bipartition(netlists[-1],
                             initial=Partition(labels, solution.k),
                             config=fm_config, rng=rng)
    current_solution = refined.partition
    for i in range(len(clusterings) - 1, -1, -1):
        projected = project(current_solution, clusterings[i])
        if rec.enabled:
            rec.level = i
        refined = fm_bipartition(netlists[i], initial=projected,
                                 config=fm_config, rng=rng)
        current_solution = refined.partition
    if rec.enabled:
        rec.level = -1
    return current_solution


def ml_vcycle(hg: Hypergraph,
              cycles: int = 2,
              config: Optional[MLConfig] = None,
              initial: Optional[Partition] = None,
              seed: SeedLike = None,
              rng: Optional[random.Random] = None) -> VCycleResult:
    """ML bipartitioning followed by ``cycles`` restricted V-cycles.

    Each cycle re-coarsens under the current solution's side labels and
    refines on the way back up; the best solution seen is kept, so the
    sequence of cuts is non-increasing.
    """
    if cycles < 0:
        raise ConfigError(f"cycles must be >= 0, got {cycles}")
    config = config or MLConfig()
    rng = rng if rng is not None else make_rng(seed)
    if hg.num_modules < 2:
        raise ClusteringError("cannot bipartition fewer than two modules")

    if initial is None:
        first = ml_bipartition(hg, config=config, rng=rng)
        best_partition, best_cut = first.partition, first.cut
    else:
        if initial.k != 2:
            raise ConfigError("ml_vcycle refines bipartitions (k=2)")
        best_partition, best_cut = initial, cut(hg, initial)

    tr = tracer()
    rec = recorder()
    cycle_cuts = [best_cut]
    for i in range(cycles):
        t_cycle = tr.begin() if tr.enabled else 0
        if rec.enabled:
            rec.emit({"t": "cycle", "c": i + 1})
        candidate = _restricted_cycle(hg, best_partition, config, rng)
        candidate_cut = cut(hg, candidate)
        cycle_cuts.append(candidate_cut)
        if candidate_cut < best_cut:
            best_cut = candidate_cut
            best_partition = candidate
        if tr.enabled:
            tr.end("vcycle.cycle", t_cycle, {
                "cycle": i + 1, "cut": candidate_cut,
                "best_cut": best_cut, "modules": hg.num_modules,
            })
    return VCycleResult(partition=best_partition, cut=best_cut,
                        cycles=cycles, cycle_cuts=cycle_cuts)
