"""The paper's primary contribution: the ML multilevel partitioner,
its quadrisection extension, and multistart experiment wrappers."""

from .config import (DEFAULT_COARSENING_THRESHOLD, DEFAULT_QUAD_THRESHOLD,
                     MLConfig)
from .ml import Hierarchy, MLResult, build_hierarchy, ml_bipartition
from .multistart import MultistartResult, ml_multistart, multistart
from .quadrisection import (MLKWayResult, default_quad_config, ml_kway,
                            ml_quadrisection)
from .recursive import recursive_bisection
from .vcycle import VCycleResult, ml_vcycle

__all__ = [
    "MLConfig",
    "DEFAULT_COARSENING_THRESHOLD",
    "DEFAULT_QUAD_THRESHOLD",
    "MLResult",
    "ml_bipartition",
    "build_hierarchy",
    "Hierarchy",
    "MLKWayResult",
    "ml_kway",
    "ml_quadrisection",
    "default_quad_config",
    "recursive_bisection",
    "ml_vcycle",
    "VCycleResult",
    "MultistartResult",
    "multistart",
    "ml_multistart",
]
