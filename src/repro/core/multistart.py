"""Multistart wrappers.

The paper's tables report minimum / average / standard deviation over
100 (or 10, or 40) independent runs of each algorithm.  These helpers
run any seeded partitioner ``runs`` times with position-stable child
seeds (run ``i`` is identical whether 10 or 100 runs were requested,
matching how Table VII derives its 10-run column from the same
experiment as the 100-run column).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import mean, pstdev
from typing import Callable, Generic, List, Optional, TypeVar

from ..errors import ConfigError
from ..hypergraph import Hypergraph
from ..partition import Partition
from ..rng import SeedLike, child_seeds
from .config import MLConfig
from .ml import MLResult, ml_bipartition

__all__ = ["MultistartResult", "multistart", "ml_multistart"]

R = TypeVar("R")


@dataclass
class MultistartResult(Generic[R]):
    """Statistics over repeated runs of a partitioner."""

    cuts: List[int]
    best_result: R
    best_partition: Partition
    cpu_seconds: float
    results: List[R] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.cuts)

    @property
    def min_cut(self) -> int:
        return min(self.cuts)

    @property
    def avg_cut(self) -> float:
        return mean(self.cuts)

    @property
    def std_cut(self) -> float:
        """Population standard deviation, as the paper's STD columns."""
        return pstdev(self.cuts)

    def prefix(self, runs: int) -> "MultistartResult[R]":
        """Statistics over the first ``runs`` runs (e.g. 10 of 100)."""
        if not 1 <= runs <= len(self.cuts):
            raise ConfigError(
                f"prefix of {runs} runs requested, have {len(self.cuts)}")
        cuts = self.cuts[:runs]
        kept = self.results[:runs] if self.results else []
        if kept:
            best_i = min(range(runs), key=lambda i: cuts[i])
            best = kept[best_i]
            best_partition = best.partition
        else:
            best = self.best_result
            best_partition = self.best_partition
        return MultistartResult(cuts=cuts, best_result=best,
                                best_partition=best_partition,
                                cpu_seconds=self.cpu_seconds
                                * runs / len(self.cuts),
                                results=kept)


def multistart(run: Callable[[int], R],
               runs: int,
               seed: SeedLike = None,
               keep_results: bool = False) -> MultistartResult[R]:
    """Run ``run(child_seed)`` ``runs`` times and aggregate.

    ``run`` must return an object exposing ``cut`` and ``partition``
    (all the engines' result types do).
    """
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    seeds = child_seeds(seed, runs)
    cuts: List[int] = []
    results: List[R] = []
    best: Optional[R] = None
    start = time.perf_counter()
    for s in seeds:
        result = run(s)
        cuts.append(result.cut)
        if keep_results:
            results.append(result)
        if best is None or result.cut < best.cut:
            best = result
    elapsed = time.perf_counter() - start
    assert best is not None
    return MultistartResult(cuts=cuts, best_result=best,
                            best_partition=best.partition,
                            cpu_seconds=elapsed, results=results)


def ml_multistart(hg: Hypergraph, runs: int = 100,
                  config: Optional[MLConfig] = None,
                  seed: SeedLike = 0,
                  keep_results: bool = False
                  ) -> MultistartResult[MLResult]:
    """``runs`` independent ML runs on ``hg`` (Table IV-VII protocol)."""
    config = config or MLConfig()
    return multistart(lambda s: ml_bipartition(hg, config=config, seed=s),
                      runs=runs, seed=seed, keep_results=keep_results)
