"""Configuration for the ML multilevel algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..clustering.matching import MATCHING_SCHEMES
from ..errors import ConfigError
from ..fm.config import FMConfig

__all__ = ["MLConfig", "DEFAULT_COARSENING_THRESHOLD",
           "DEFAULT_QUAD_THRESHOLD"]

#: Paper: "For all experiments, the coarsening threshold was set to
#: T = 35 modules" (Section IV).
DEFAULT_COARSENING_THRESHOLD = 35

#: Paper: quadrisection results use T = 100 (Section IV-D).
DEFAULT_QUAD_THRESHOLD = 100


@dataclass(frozen=True)
class MLConfig:
    """Knobs for :func:`repro.core.ml_bipartition` / ``ml_kway``.

    Attributes
    ----------
    coarsening_threshold:
        ``T`` of Figure 2: coarsening continues while the current
        netlist has more than ``T`` modules.
    matching_ratio:
        ``R`` of Figure 3, in ``(0, 1]``; smaller values coarsen more
        slowly, producing more hierarchy levels (Section III-A).
    engine:
        ``"fm"`` for ML_F or ``"clip"`` for ML_C (Section IV).
    matching_scheme:
        Coarsening matcher: the paper's ``"conn"``, or the ``"heavy"`` /
        ``"random"`` ablation schemes.
    fm:
        Configuration forwarded to every ``FMPartition`` refinement call
        (bucket policy, tolerance ``r``, net-size cutoff, ...).  The
        ``clip`` flag inside it is overridden by ``engine``.
    max_levels:
        Safety bound on hierarchy depth.
    coarsest_starts:
        Number of independent partitioning attempts on the coarsest
        netlist, keeping the best (Section V future work: "It may be
        worthwhile to spend more CPU time partitioning at these levels,
        e.g., by calling FM multiple times").  The coarsest netlist has
        at most ``T`` modules, so extra starts are nearly free.
    """

    coarsening_threshold: int = DEFAULT_COARSENING_THRESHOLD
    matching_ratio: float = 1.0
    engine: str = "fm"
    matching_scheme: str = "conn"
    fm: FMConfig = field(default_factory=FMConfig)
    max_levels: int = 200
    coarsest_starts: int = 1

    def __post_init__(self):
        if self.coarsening_threshold < 2:
            raise ConfigError(
                f"coarsening_threshold must be >= 2, got "
                f"{self.coarsening_threshold}")
        if not 0 < self.matching_ratio <= 1:
            raise ConfigError(
                f"matching_ratio must be in (0, 1], got "
                f"{self.matching_ratio}")
        if self.engine not in ("fm", "clip"):
            raise ConfigError(
                f"engine must be 'fm' or 'clip', got {self.engine!r}")
        if self.matching_scheme not in MATCHING_SCHEMES:
            raise ConfigError(
                f"matching_scheme must be one of {MATCHING_SCHEMES}, got "
                f"{self.matching_scheme!r}")
        if self.max_levels < 1:
            raise ConfigError(
                f"max_levels must be >= 1, got {self.max_levels}")
        if self.coarsest_starts < 1:
            raise ConfigError(
                f"coarsest_starts must be >= 1, got "
                f"{self.coarsest_starts}")

    def engine_config(self) -> FMConfig:
        """The FM configuration with the engine's CLIP flag applied."""
        return replace(self.fm, clip=self.engine == "clip")
