"""Recursive bisection: k-way partitioning via repeated ML bipartition.

The paper partitions 4 ways *directly* with Sanchis multi-way FM
(Section III-C); the classical alternative — used by hMETIS-era tools —
is to bisect recursively.  This module provides that alternative so the
two strategies can be compared (see ``benchmarks/bench_ablations.py``):
each side of a bisection becomes an independent subproblem over the
sub-netlist of nets falling wholly inside it (crossing nets are already
paid for and cannot be un-cut by deeper levels).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..partition import Partition
from ..rng import SeedLike, make_rng
from .config import MLConfig
from .ml import ml_bipartition

__all__ = ["recursive_bisection"]


def _subcircuit(hg: Hypergraph,
                modules: List[int]) -> Tuple[Hypergraph, List[int]]:
    """Sub-netlist over ``modules`` with the nets wholly inside it."""
    local = {v: i for i, v in enumerate(modules)}
    nets = []
    weights = []
    for e in hg.all_nets():
        pins = hg.pins(e)
        mapped = [local[v] for v in pins if v in local]
        if len(mapped) == len(pins):
            nets.append(mapped)
            weights.append(hg.net_weight(e))
    sub = Hypergraph(nets, num_modules=len(modules),
                     areas=[hg.area(v) for v in modules],
                     net_weights=weights, name=f"{hg.name}/sub")
    return sub, modules


def recursive_bisection(hg: Hypergraph,
                        k: int = 4,
                        config: Optional[MLConfig] = None,
                        seed: SeedLike = None,
                        rng: Optional[random.Random] = None) -> Partition:
    """Partition ``hg`` into ``k`` (a power of two) parts recursively.

    Each bisection runs the full ML multilevel algorithm on its
    subproblem.  Part numbering follows the recursion: the first half
    of the split receives the lower part indices.
    """
    if k < 2 or k & (k - 1):
        raise PartitionError(
            f"recursive_bisection needs k a power of two >= 2, got {k}")
    if hg.num_modules < k:
        raise PartitionError(
            f"cannot {k}-way partition {hg.num_modules} modules")
    config = config or MLConfig()
    rng = rng if rng is not None else make_rng(seed)

    assignment = [0] * hg.num_modules

    def split(sub: Hypergraph, globals_: List[int], base: int,
              parts: int) -> None:
        if parts == 1:
            for v in globals_:
                assignment[v] = base
            return
        if sub.num_modules <= parts:
            # Degenerate subproblem: spread the modules round-robin.
            for i, v in enumerate(globals_):
                assignment[v] = base + (i % parts)
            return
        result = ml_bipartition(sub, config=config, rng=rng)
        sides: List[List[int]] = [[], []]
        for local, part in enumerate(result.partition.assignment):
            sides[part].append(local)
        for side, offset in ((0, 0), (1, parts // 2)):
            picked = [globals_[local] for local in sides[side]]
            if not picked:
                continue
            if parts // 2 == 1:
                for v in picked:
                    assignment[v] = base + offset
            else:
                deeper, mapping = _subcircuit(hg, picked)
                split(deeper, mapping, base + offset, parts // 2)

    split(hg, list(hg.modules()), 0, k)
    return Partition(assignment, k)
