"""Deterministic fault plans.

A :class:`FaultPlan` is a pure function ``(start index, attempt) ->
fault kind or None`` derived from a seed, so an armed portfolio suffers
*the same* faults at any worker count and on every re-run: the decision
for a start depends only on the plan and the start's identity, never on
scheduling.  Faults come in two families:

* **pre-call** — the start never produces a result: ``raise`` (the
  worker raises :class:`~repro.errors.InjectedFault`), ``hang`` (the
  worker sleeps past any reasonable budget), ``exit`` (the worker
  process dies without returning).
* **corrupting** — the start returns a *wrong* result:
  ``corrupt_cut`` (the reported cut disagrees with the partition),
  ``corrupt_assignment`` (a module is silently flipped to the other
  side while the stale cut is still reported).  These model silent
  result corruption — undetectable without ``verify=``.

Plans decide probabilistically (``rate`` per (start, attempt)) and/or
through an explicit ``targeted`` table used by tests to place a
specific fault on a specific start.  ``attempts`` bounds how deep into
the retry chain the rate-based faults reach: with the default ``1`` a
retried start runs clean, so retries actually recover.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ConfigError
from ..rng import stable_seed

__all__ = ["FAULT_RAISE", "FAULT_HANG", "FAULT_EXIT",
           "FAULT_CORRUPT_ASSIGNMENT", "FAULT_CORRUPT_CUT",
           "FAULT_KINDS", "CORRUPTING_KINDS", "FaultPlan"]

#: The start raises :class:`~repro.errors.InjectedFault`.
FAULT_RAISE = "raise"
#: The start sleeps ``hang_seconds`` before running.
FAULT_HANG = "hang"
#: The worker process exits without returning (``os._exit`` in a pool
#: worker; simulated as a raise in-process, where a real exit would
#: take the whole sweep down).
FAULT_EXIT = "exit"
#: One module of the returned partition is flipped; the stale cut is
#: still reported.
FAULT_CORRUPT_ASSIGNMENT = "corrupt_assignment"
#: The returned partition is intact but the reported cut is wrong.
FAULT_CORRUPT_CUT = "corrupt_cut"

FAULT_KINDS = (FAULT_RAISE, FAULT_HANG, FAULT_EXIT,
               FAULT_CORRUPT_ASSIGNMENT, FAULT_CORRUPT_CUT)
CORRUPTING_KINDS = (FAULT_CORRUPT_ASSIGNMENT, FAULT_CORRUPT_CUT)


@dataclass(frozen=True)
class FaultPlan:
    """Seed-driven schedule of injected faults.

    ``decide(index, attempt)`` is deterministic and
    scheduling-independent: it hashes ``(seed, index, attempt)`` into a
    private RNG, so the same plan produces the same faults serially and
    across a fork pool.  ``targeted`` maps ``(index, attempt)`` to a
    kind and wins over the rate draw; ``rate``-based faults only fire
    on ``attempt <= attempts``.
    """

    seed: int = 0
    rate: float = 0.0
    kinds: Tuple[str, ...] = FAULT_KINDS
    attempts: int = 1
    hang_seconds: float = 30.0
    targeted: Dict[Tuple[int, int], str] = field(default_factory=dict)

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.attempts < 1:
            raise ConfigError(f"attempts must be >= 1, got {self.attempts}")
        if self.hang_seconds <= 0:
            raise ConfigError(
                f"hang_seconds must be > 0, got {self.hang_seconds}")
        if not self.kinds:
            raise ConfigError("kinds must name at least one fault kind")
        for kind in tuple(self.kinds) + tuple(self.targeted.values()):
            if kind not in FAULT_KINDS:
                raise ConfigError(f"unknown fault kind {kind!r}; expected "
                                  f"one of {FAULT_KINDS}")

    # ------------------------------------------------------------------

    def decide(self, index: int, attempt: int) -> Optional[str]:
        """Fault kind for ``(index, attempt)``, or ``None`` to run clean."""
        kind = self.targeted.get((index, attempt))
        if kind is not None:
            return kind
        if self.rate == 0.0 or attempt > self.attempts:
            return None
        rng = random.Random(stable_seed("fault-plan", self.seed, index,
                                        attempt))
        if rng.random() >= self.rate:
            return None
        return self.kinds[rng.randrange(len(self.kinds))]

    def corruption_rng(self, index: int, attempt: int) -> random.Random:
        """Private RNG for corrupting a result — same derivation as
        :meth:`decide`, so corruption is scheduling-independent too."""
        return random.Random(stable_seed("fault-corrupt", self.seed, index,
                                         attempt))

    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec string.

        Either a bare rate (``"0.1"``) or comma-separated
        ``key=value`` pairs: ``rate``, ``seed``, ``attempts``,
        ``hang`` (seconds), and ``kinds`` as ``+``-joined names, e.g.
        ``"rate=0.1,seed=7,kinds=raise+corrupt_cut"``.
        """
        spec = spec.strip()
        if not spec:
            raise ConfigError("empty fault spec")
        kwargs: dict = {}
        try:
            kwargs["rate"] = float(spec)
            return cls(**kwargs)
        except ValueError:
            pass
        for part in spec.split(","):
            if "=" not in part:
                raise ConfigError(
                    f"fault spec field {part!r} is not 'key=value'")
            key, value = (s.strip() for s in part.split("=", 1))
            try:
                if key == "rate":
                    kwargs["rate"] = float(value)
                elif key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "attempts":
                    kwargs["attempts"] = int(value)
                elif key == "hang":
                    kwargs["hang_seconds"] = float(value)
                elif key == "kinds":
                    kwargs["kinds"] = tuple(value.split("+"))
                else:
                    raise ConfigError(f"unknown fault spec key {key!r}")
            except ValueError:
                raise ConfigError(
                    f"bad value {value!r} for fault spec key {key!r}") \
                    from None
        return cls(**kwargs)
