"""Deterministic fault injection for the portfolio runtime.

The paper's evaluation is a long multi-start sweep; this package makes
the runtime's fault model *testable* by injecting crashes, hangs,
worker deaths, and silent result corruption on demand — with the same
plan producing the same faults at any worker count.

* :mod:`.plan`   — :class:`FaultPlan`: seed-driven
  ``(start, attempt) -> fault kind`` schedule, plus the kind constants.
* :mod:`.inject` — :class:`FaultInjector`: applies a plan to running
  starts (raise / hang / kill worker / corrupt result).

Arm a plan on a :class:`~repro.runtime.Portfolio` via its ``faults=``
field, or from the CLI with ``--inject-faults``.
"""

from .inject import FaultInjector, WORKER_EXIT_CODE
from .plan import (CORRUPTING_KINDS, FAULT_CORRUPT_ASSIGNMENT,
                   FAULT_CORRUPT_CUT, FAULT_EXIT, FAULT_HANG, FAULT_KINDS,
                   FAULT_RAISE, FaultPlan)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FAULT_RAISE",
    "FAULT_HANG",
    "FAULT_EXIT",
    "FAULT_CORRUPT_ASSIGNMENT",
    "FAULT_CORRUPT_CUT",
    "FAULT_KINDS",
    "CORRUPTING_KINDS",
    "WORKER_EXIT_CODE",
]
