"""Applying a fault plan to running starts.

The :class:`FaultInjector` is what the executors actually call: it
turns the plan's abstract kinds into concrete misbehaviour at the two
points a start can go wrong — before the algorithm runs (crash, hang,
worker death) and after it returns (silent result corruption).

Corruption is deterministic: the corrupted result is a pure function of
``(plan seed, index, attempt)`` and the honest result, so a corrupted
start looks byte-identical under serial and fork-pool execution.
``corrupt_assignment`` searches (deterministically) for a module whose
flip *changes the true cut* — guaranteeing the corruption is observable
by recomputation — and falls back to also skewing the reported cut on
degenerate netlists where no single flip matters.
"""

from __future__ import annotations

import copy
import os
import time
from typing import Optional

from ..errors import InjectedFault
from .plan import (CORRUPTING_KINDS, FAULT_CORRUPT_ASSIGNMENT,
                   FAULT_CORRUPT_CUT, FAULT_EXIT, FAULT_HANG, FAULT_RAISE,
                   FaultPlan)

__all__ = ["FaultInjector", "WORKER_EXIT_CODE"]

#: Exit status used when an ``exit`` fault kills a pool worker;
#: recognisable in process tables while debugging chaos runs.
WORKER_EXIT_CODE = 70

#: Candidate modules examined when searching for a cut-changing flip.
_FLIP_CANDIDATES = 8


class FaultInjector:
    """Executes a :class:`FaultPlan` against individual starts."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def fire(self, index: int, attempt: int,
             in_worker: bool = False) -> Optional[str]:
        """Apply any pre-call fault for ``(index, attempt)``.

        Returns the fault kind when it is a *corrupting* one (to be
        applied to the result via :meth:`corrupt`), ``None`` when the
        start runs clean.  Pre-call kinds act immediately: ``raise``
        raises, ``hang`` sleeps ``plan.hang_seconds``, ``exit`` kills
        the worker process (``os._exit``) — or, in-process where a real
        exit would take the whole sweep down, raises instead.
        """
        kind = self.plan.decide(index, attempt)
        if kind is None:
            return None
        if kind == FAULT_RAISE:
            raise InjectedFault(
                f"injected crash (start {index}, attempt {attempt})")
        if kind == FAULT_HANG:
            time.sleep(self.plan.hang_seconds)
            return None
        if kind == FAULT_EXIT:
            if in_worker:
                os._exit(WORKER_EXIT_CODE)
            raise InjectedFault(
                f"injected worker exit (start {index}, attempt {attempt}; "
                "simulated as a crash in-process)")
        assert kind in CORRUPTING_KINDS
        return kind

    def corrupt(self, kind: str, index: int, attempt: int, hg,
                result: object) -> object:
        """Return a silently-corrupted shallow copy of ``result``."""
        rng = self.plan.corruption_rng(index, attempt)
        corrupted = copy.copy(result)
        partition = getattr(result, "partition", None)
        if kind == FAULT_CORRUPT_ASSIGNMENT and partition is not None:
            from ..partition.objectives import cut as reference_cut
            from ..partition.solution import Partition
            honest_cut = reference_cut(hg, partition)
            flipped = None
            for _ in range(_FLIP_CANDIDATES):
                v = rng.randrange(partition.num_modules)
                assignment = list(partition.assignment)
                shift = 1 + rng.randrange(partition.k - 1)
                assignment[v] = (assignment[v] + shift) % partition.k
                candidate = Partition(assignment, partition.k)
                if reference_cut(hg, candidate) != honest_cut:
                    flipped = candidate
                    break
            if flipped is not None:
                corrupted.partition = flipped
                return corrupted
            # Degenerate netlist: no single flip moves the cut, so the
            # flip alone would be unobservable; skew the report instead.
            kind = FAULT_CORRUPT_CUT
        reported = getattr(result, "cut", 0) or 0
        corrupted.cut = reported + 1 + rng.randrange(9)
        return corrupted
