"""Seeded random-number helpers.

Every stochastic component in this library takes an explicit ``seed`` (or
an already-constructed :class:`random.Random`), so that each experiment in
the paper's tables is exactly reproducible.  These helpers centralise the
conventions:

* :func:`make_rng` normalises "seed or Random or None" arguments.
* :func:`child_seeds` derives independent per-run seeds for multistart
  experiments, so run *i* of an algorithm is the same regardless of how
  many total runs were requested.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Union

SeedLike = Union[int, random.Random, None]

#: Modulus used when deriving child seeds; any large prime-ish bound works,
#: it only needs to keep seeds inside a stable integer range.
_SEED_BOUND = 2**63 - 1


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be an ``int`` (deterministic), an existing ``Random``
    (returned unchanged, so state is shared deliberately), or ``None``
    (OS-entropy seeded).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def child_seeds(seed: SeedLike, count: int) -> List[int]:
    """Derive ``count`` independent child seeds from ``seed``.

    The derivation is position-stable: extending ``count`` keeps earlier
    seeds unchanged, which lets "10 runs" be a strict prefix of "100 runs"
    (the paper reports both for MLc in Table VII).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = make_rng(seed)
    return [rng.randrange(_SEED_BOUND) for _ in range(count)]


def stable_seed(*parts: object) -> int:
    """Deterministic seed from arbitrary labels, stable across processes.

    Python's built-in ``hash()`` of strings is salted per process
    (PYTHONHASHSEED), so experiment seeds derived from circuit or
    algorithm names must go through a real hash instead.
    """
    digest = hashlib.blake2b(repr(parts).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % _SEED_BOUND


def random_permutation(n: int, rng: random.Random) -> List[int]:
    """Return a uniformly random permutation of ``range(n)``."""
    perm = list(range(n))
    rng.shuffle(perm)
    return perm


def spawn(rng: random.Random) -> random.Random:
    """Return a new independent ``Random`` derived from ``rng``'s stream."""
    return random.Random(rng.randrange(_SEED_BOUND))


def choice_weighted(items: Iterable[int], weights: Iterable[float],
                    rng: random.Random) -> Optional[int]:
    """Weighted choice that returns ``None`` for an empty population."""
    population = list(items)
    if not population:
        return None
    return rng.choices(population, weights=list(weights), k=1)[0]
