"""Kernel-mode registry for the coarsen–refine hot path.

The partitioning engines have three interchangeable implementations of
every hot kernel:

* ``"csr"`` (default) — kernels consume the flat-array incidence layer
  of :class:`repro.hypergraph.csr.CSRIncidence` (``Hypergraph.csr``):
  per-kernel local bindings of the materialised pin/net/weight/area
  vectors, no per-pin method dispatch.
* ``"numpy"`` — vectorized kernels over the NumPy export of the same
  flat arrays (:class:`repro.hypergraph.npview.NumpyIncidence`,
  ``Hypergraph.csr.np``): whole-netlist sweeps become array ops
  (``bincount``/``add.at``/``lexsort``), and the FM pass loop becomes
  a batched gain-descent on large netlists (:mod:`repro.fm.npengine`).
  Kernels that are pure integer counting (partition-state init,
  initial gains) and the coarsening scorer are bit-identical to
  ``"csr"``; the batched refinement diverges in tie-breaking and
  carries its own golden cuts (DESIGN.md §13).
* ``"reference"`` — the original tuple-of-tuples kernels, preserved
  verbatim.  They exist as a correctness oracle and as the "before"
  timing baseline for ``benchmarks/bench_kernels.py``.

The mode is a process-global switch sampled at kernel-entry time (per
FM call / per :class:`~repro.partition.PartitionState` construction,
never per pin), so switching costs nothing on the hot path.  Worker
processes of the parallel runtime inherit the mode through ``fork``.

Determinism contract: every mode is deterministic — position-stable
per-start seed streams and stable result fingerprints for a fixed
mode.  ``"csr"`` and ``"reference"`` additionally execute the *same
arithmetic in the same order*, so golden cuts pinned under one hold
under the other; ``"numpy"`` matches them for every order-preserving
kernel but pins separate goldens where the batched refinement's
tie-breaking differs (see :func:`cut_class`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .errors import ConfigError

__all__ = ["KERNEL_MODES", "kernel_mode", "set_kernel_mode",
           "use_kernels", "csr_enabled", "numpy_enabled", "cut_class"]

KERNEL_MODES = ("csr", "reference", "numpy")

_mode = "csr"


def kernel_mode() -> str:
    """The currently selected kernel implementation family."""
    return _mode


def csr_enabled() -> bool:
    """True when the flat CSR incidence layer backs the kernels.

    Both ``"csr"`` and ``"numpy"`` satisfy this: the vectorized
    kernels twin a *subset* of the hot path, and every kernel without
    a NumPy twin runs its CSR implementation (never the reference
    one) under ``"numpy"`` mode.
    """
    return _mode != "reference"


def numpy_enabled() -> bool:
    """True when the vectorized NumPy kernels are selected."""
    return _mode == "numpy"


def _have_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return False
    return True


def set_kernel_mode(mode: str) -> None:
    """Select ``"csr"``, ``"reference"``, or ``"numpy"`` process-wide."""
    global _mode
    if mode not in KERNEL_MODES:
        raise ConfigError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}")
    if mode == "numpy" and not _have_numpy():  # pragma: no cover
        raise ConfigError("kernel mode 'numpy' requires the numpy package")
    _mode = mode


def cut_class(mode: Optional[str] = None) -> str:
    """Equivalence class of ``mode`` (default: current mode) under the
    golden-cut contract.

    ``"csr"`` and ``"reference"`` run identical arithmetic in identical
    order, so their results are bit-equal and share the class
    ``"scalar"``; ``"numpy"``'s batched refinement breaks ties
    differently and forms its own class.  Anything keyed on *outcomes*
    (service result caches, golden tests) must distinguish cut classes
    — and must not split any finer, or equal results would stop
    deduplicating.
    """
    mode = _mode if mode is None else mode
    if mode not in KERNEL_MODES:
        raise ConfigError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}")
    return "numpy" if mode == "numpy" else "scalar"


@contextmanager
def use_kernels(mode: str) -> Iterator[None]:
    """Temporarily switch kernel modes (tests and benchmarks)."""
    previous = _mode
    set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(previous)
