"""Kernel-mode registry for the coarsen–refine hot path.

The partitioning engines have two interchangeable implementations of
every hot kernel:

* ``"csr"`` (default) — kernels consume the flat-array incidence layer
  of :class:`repro.hypergraph.csr.CSRIncidence` (``Hypergraph.csr``):
  per-kernel local bindings of the materialised pin/net/weight/area
  vectors, no per-pin method dispatch.
* ``"reference"`` — the original tuple-of-tuples kernels, preserved
  verbatim.  They exist as a correctness oracle (every result must be
  bit-identical between the two modes: same cuts, same RNG draws) and
  as the "before" timing baseline for ``benchmarks/bench_kernels.py``.

The mode is a process-global switch sampled at kernel-entry time (per
FM call / per :class:`~repro.partition.PartitionState` construction,
never per pin), so switching costs nothing on the hot path.  Worker
processes of the parallel runtime inherit the mode through ``fork``.

Determinism contract: the two modes execute the *same arithmetic in
the same order* and draw from ``random.Random`` streams at the same
points, so golden-cut tests pinned under one mode hold under both.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .errors import ConfigError

__all__ = ["KERNEL_MODES", "kernel_mode", "set_kernel_mode",
           "use_kernels", "csr_enabled"]

KERNEL_MODES = ("csr", "reference")

_mode = "csr"


def kernel_mode() -> str:
    """The currently selected kernel implementation family."""
    return _mode


def csr_enabled() -> bool:
    """True when the flat CSR kernels are selected (the default)."""
    return _mode == "csr"


def set_kernel_mode(mode: str) -> None:
    """Select ``"csr"`` or ``"reference"`` kernels process-wide."""
    global _mode
    if mode not in KERNEL_MODES:
        raise ConfigError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}")
    _mode = mode


@contextmanager
def use_kernels(mode: str) -> Iterator[None]:
    """Temporarily switch kernel modes (tests and benchmarks)."""
    previous = _mode
    set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(previous)
