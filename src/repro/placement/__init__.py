"""Top-down placement built on multilevel quadrisection, with terminal
propagation and wirelength scoring (the paper's [24] application)."""

from .quadplace import PlacementResult, Region, quadrisection_placement
from .wirelength import hpwl, total_quadratic_wirelength

__all__ = [
    "quadrisection_placement",
    "PlacementResult",
    "Region",
    "hpwl",
    "total_quadratic_wirelength",
]
