"""Top-down placement by recursive multilevel quadrisection.

The paper's quadrisection algorithm "has been used as the basis for an
effective cell placement package" [24] (Sections I, III-C, IV-D).  This
module implements that flow: the layout region is recursively split
into quadrants, each region's subcircuit is 4-way partitioned with
:func:`repro.core.ml_quadrisection`, and nets crossing a region's
border are handled by *terminal propagation* — every external net
contributes a zero-movement terminal pre-assigned to the quadrant
nearest the net's outside pins, exactly the pre-assigned-pad mechanism
Section III-C describes.

The result is a coordinate for every module (the centre of its final
region), scored by half-perimeter wirelength.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import MLConfig
from ..core.quadrisection import default_quad_config, ml_quadrisection
from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..rng import SeedLike, make_rng
from ..fm.kway import kway_partition
from .wirelength import hpwl

__all__ = ["PlacementResult", "Region", "quadrisection_placement"]

#: Terminals carry negligible area so they never distort the balance
#: constraint of the region they are propagated into.
_TERMINAL_AREA = 1e-6


@dataclass
class Region:
    """An axis-aligned layout region holding a set of modules."""

    x0: float
    y0: float
    x1: float
    y1: float
    modules: List[int]

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)

    def quadrant_centers(self) -> List[Tuple[float, float]]:
        """Centres of the four child quadrants, part-indexed as
        0 = left-bottom, 1 = left-top, 2 = right-bottom, 3 = right-top."""
        mx, my = self.center
        return [((self.x0 + mx) / 2, (self.y0 + my) / 2),
                ((self.x0 + mx) / 2, (my + self.y1) / 2),
                ((mx + self.x1) / 2, (self.y0 + my) / 2),
                ((mx + self.x1) / 2, (my + self.y1) / 2)]

    def children(self) -> List["Region"]:
        mx, my = self.center
        return [Region(self.x0, self.y0, mx, my, []),
                Region(self.x0, my, mx, self.y1, []),
                Region(mx, self.y0, self.x1, my, []),
                Region(mx, my, self.x1, self.y1, [])]


@dataclass
class PlacementResult:
    """Final coordinates and quality of a top-down placement."""

    x: List[float]
    y: List[float]
    hpwl: float
    levels: int
    regions: List[Region]


def _region_subproblem(hg: Hypergraph, region: Region,
                       x: List[float], y: List[float]
                       ) -> Tuple[Hypergraph, List[int], List[int]]:
    """Extract the region's subcircuit with propagated terminals.

    Returns ``(sub_hg, local_of_global, fixed)`` where ``fixed`` maps
    each local module to a pre-assigned quadrant (or ``-1`` for free
    movable modules).  One terminal is created per external net, placed
    at the quadrant nearest the mean position of the net's outside pins.
    """
    inside = {v: i for i, v in enumerate(region.modules)}
    quadrant_xy = region.quadrant_centers()

    nets: List[List[int]] = []
    weights: List[int] = []
    areas: List[float] = [hg.area(v) for v in region.modules]
    fixed: List[int] = [-1] * len(region.modules)

    for e in hg.all_nets():
        pins = hg.pins(e)
        local = [inside[v] for v in pins if v in inside]
        if len(local) < (2 if len(local) == len(pins) else 1):
            continue
        if len(local) == len(pins):
            nets.append(local)
            weights.append(hg.net_weight(e))
            continue
        # External net: add a terminal pinned to the nearest quadrant.
        outside = [v for v in pins if v not in inside]
        ox = sum(x[v] for v in outside) / len(outside)
        oy = sum(y[v] for v in outside) / len(outside)
        quadrant = min(range(4), key=lambda q: (
            (quadrant_xy[q][0] - ox) ** 2 + (quadrant_xy[q][1] - oy) ** 2))
        terminal = len(areas)
        areas.append(_TERMINAL_AREA)
        fixed.append(quadrant)
        nets.append(local + [terminal])
        weights.append(hg.net_weight(e))

    sub = Hypergraph(nets, num_modules=len(areas), areas=areas,
                     net_weights=weights,
                     name=f"{hg.name}/region")
    return sub, list(region.modules), fixed


def quadrisection_placement(hg: Hypergraph,
                            levels: int = 3,
                            config: Optional[MLConfig] = None,
                            objective: str = "soed",
                            min_region_modules: int = 16,
                            seed: SeedLike = None,
                            rng: Optional[random.Random] = None
                            ) -> PlacementResult:
    """Place ``hg`` on the unit square by recursive quadrisection.

    ``levels`` recursions produce a ``2**levels x 2**levels`` grid of
    final regions; regions smaller than ``min_region_modules`` stop
    subdividing early.  Small regions (at or below four times the ML
    coarsening threshold) are partitioned with flat k-way FM instead of
    the full multilevel stack — coarsening cannot help there.
    """
    if levels < 1:
        raise PartitionError(f"levels must be >= 1, got {levels}")
    config = config or default_quad_config()
    rng = rng if rng is not None else make_rng(seed)

    x = [0.5] * hg.num_modules
    y = [0.5] * hg.num_modules
    frontier = [Region(0.0, 0.0, 1.0, 1.0, list(hg.modules()))]

    for _ in range(levels):
        next_frontier: List[Region] = []
        for region in frontier:
            if len(region.modules) < max(4, min_region_modules):
                next_frontier.append(region)
                continue
            sub, globals_, fixed = _region_subproblem(hg, region, x, y)
            movable = sum(1 for f in fixed if f < 0)
            if movable < 4:
                next_frontier.append(region)
                continue
            if movable <= 4 * config.coarsening_threshold:
                lock = [f >= 0 for f in fixed]
                assignment = None
                result = kway_partition(
                    sub, k=4,
                    initial=_seeded_initial(sub, fixed, rng),
                    config=config.engine_config(), objective=objective,
                    rng=rng, fixed=lock)
                assignment = result.partition.assignment
            else:
                result = ml_quadrisection(sub, config=config,
                                          objective=objective,
                                          fixed=fixed, rng=rng)
                assignment = result.partition.assignment

            children = region.children()
            for local, v in enumerate(globals_):
                child = children[assignment[local]]
                child.modules.append(v)
                cx, cy = child.center
                x[v], y[v] = cx, cy
            next_frontier.extend(children)
        frontier = next_frontier

    return PlacementResult(x=x, y=y, hpwl=hpwl(hg, x, y),
                           levels=levels, regions=frontier)


def _seeded_initial(sub: Hypergraph, fixed: List[int],
                    rng: random.Random):
    """Random initial 4-way assignment honouring pre-assigned terminals."""
    from ..partition import Partition

    assignment = []
    for v in range(sub.num_modules):
        assignment.append(fixed[v] if fixed[v] >= 0 else rng.randrange(4))
    return Partition(assignment, 4)
