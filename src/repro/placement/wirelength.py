"""Wirelength metrics for placements.

The paper's quadrisection work was integrated into a top-down placement
package [24] evaluated by wirelength; these are the standard metrics
used to score the placer in :mod:`repro.placement.quadplace`.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import PartitionError
from ..hypergraph import Hypergraph

__all__ = ["hpwl", "total_quadratic_wirelength"]


def _check(hg: Hypergraph, x: Sequence[float], y: Sequence[float]) -> None:
    if len(x) != hg.num_modules or len(y) != hg.num_modules:
        raise PartitionError(
            f"coordinate vectors of length {len(x)}/{len(y)} for "
            f"{hg.num_modules} modules")


def hpwl(hg: Hypergraph, x: Sequence[float], y: Sequence[float]) -> float:
    """Half-perimeter wirelength: sum over nets of the bounding box
    semi-perimeter, weighted by net weight."""
    _check(hg, x, y)
    total = 0.0
    for e in hg.all_nets():
        pins = hg.pins(e)
        xs = [x[v] for v in pins]
        ys = [y[v] for v in pins]
        total += hg.net_weight(e) * (max(xs) - min(xs) + max(ys) - min(ys))
    return total


def total_quadratic_wirelength(hg: Hypergraph, x: Sequence[float],
                               y: Sequence[float]) -> float:
    """Clique-model squared wirelength (GORDIAN's objective [30])."""
    _check(hg, x, y)
    total = 0.0
    for e in hg.all_nets():
        pins = hg.pins(e)
        w = hg.net_weight(e) / (len(pins) - 1)
        for i, u in enumerate(pins):
            for v in pins[i + 1:]:
                total += w * ((x[u] - x[v]) ** 2 + (y[u] - y[v]) ** 2)
    return total
