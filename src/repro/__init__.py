"""repro — a reproduction of "Multilevel Circuit Partitioning"
(C. J. Alpert, J.-H. Huang, A. B. Kahng, 1997).

The package implements the paper's ML multilevel min-cut hypergraph
partitioner and everything it stands on: the netlist hypergraph
substrate, FM/CLIP iterative engines with LIFO/FIFO/RANDOM gain
buckets, Match/Induce/Project coarsening, multi-way FM for
quadrisection, the comparator algorithms (LSMC, two-phase FM, spectral
bisection, a GORDIAN-style quadratic-placement simulator, PROP), a
top-down quadrisection placer, and an experiment harness regenerating
every table and figure of the paper's evaluation.

Quickstart::

    from repro import hierarchical_circuit, ml_bipartition, MLConfig

    netlist = hierarchical_circuit(2000, 2400, seed=1)
    result = ml_bipartition(netlist,
                            config=MLConfig(engine="clip",
                                            matching_ratio=0.5),
                            seed=42)
    print(result.cut, result.levels)
"""

from .core import (MLConfig, MLKWayResult, MLResult, MultistartResult,
                   build_hierarchy, default_quad_config, ml_bipartition,
                   ml_kway, ml_multistart, ml_quadrisection, multistart,
                   recursive_bisection, ml_vcycle)
from .clustering import Clustering, connectivity, induce, match, project
from .errors import (BalanceError, ClusteringError, ConfigError,
                     HarnessError, HypergraphError, ParseError,
                     PartitionError, ReproError)
from .hypergraph import (Hypergraph, HypergraphBuilder, benchmark_names,
                         benchmark_spec, grid_circuit,
                         hierarchical_circuit, load_circuit, load_suite,
                         random_hypergraph, read_hmetis, read_json,
                         read_netd, write_hmetis, write_json)
from .partition import (BalanceConstraint, Partition, PartitionState,
                        absorption, cut, random_partition, ratio_cut,
                        scaled_cost, soed, summarize)
from .fm import (FMConfig, FMResult, KWayResult, clip_bipartition,
                 fm_bipartition, kway_partition)
from .runtime import (HierarchyCache, Portfolio, PortfolioResult,
                      RunRecord, execute, ml_portfolio)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ml_bipartition",
    "ml_kway",
    "ml_quadrisection",
    "build_hierarchy",
    "MLConfig",
    "MLResult",
    "MLKWayResult",
    "multistart",
    "ml_multistart",
    "MultistartResult",
    "default_quad_config",
    "recursive_bisection",
    "ml_vcycle",
    # hypergraph
    "Hypergraph",
    "HypergraphBuilder",
    "hierarchical_circuit",
    "grid_circuit",
    "random_hypergraph",
    "load_circuit",
    "load_suite",
    "benchmark_names",
    "benchmark_spec",
    "read_hmetis",
    "write_hmetis",
    "read_json",
    "read_netd",
    "write_json",
    # partitioning
    "Partition",
    "random_partition",
    "PartitionState",
    "BalanceConstraint",
    "cut",
    "soed",
    "ratio_cut",
    "scaled_cost",
    "absorption",
    "summarize",
    # engines
    "FMConfig",
    "FMResult",
    "fm_bipartition",
    "clip_bipartition",
    "KWayResult",
    "kway_partition",
    # clustering
    "Clustering",
    "match",
    "connectivity",
    "induce",
    "project",
    # runtime
    "Portfolio",
    "PortfolioResult",
    "RunRecord",
    "execute",
    "HierarchyCache",
    "ml_portfolio",
    # errors
    "ReproError",
    "HypergraphError",
    "ParseError",
    "PartitionError",
    "BalanceError",
    "ClusteringError",
    "ConfigError",
    "HarnessError",
]
