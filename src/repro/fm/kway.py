"""Multi-way FM refinement (Sanchis [39], without lookahead).

The paper extends ML to quadrisection with "the quadrisection algorithm
of Sanchis but without lookahead", supporting net-cut and
sum-of-cluster-degrees gain computations (Section III-C); quadrisection
results are reported for the sum-of-degrees gain.

Each free module contributes ``k - 1`` candidate moves (one per foreign
part).  Moves live in a single gain-bucket structure keyed by
``module * k + destination``; the engine repeatedly applies the highest
gain balance-feasible move, locks the module, and finally rolls back to
the best prefix of the pass — exactly the FM pass structure generalised
to ``k`` parts.  Gains of the moved module's neighbours are recomputed
directly from the net counts (O(degree · k) per neighbour), trading the
intricate k-way delta rules for obviously-correct bookkeeping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigError, PartitionError
from ..hypergraph import Hypergraph
from ..kernels import csr_enabled
from ..partition import (BalanceConstraint, Partition, PartitionState, cut,
                         random_partition, soed)
from ..partition.rebalance import rebalance_random
from ..rng import SeedLike, make_rng
from .buckets import make_buckets
from .config import FMConfig
from .engine import _active_nets

__all__ = ["KWayResult", "kway_partition", "KWAY_OBJECTIVES"]

KWAY_OBJECTIVES = ("cut", "soed")


@dataclass
class KWayResult:
    """Outcome of one k-way FM run (both objectives reported)."""

    partition: Partition
    cut: int
    soed: int
    objective: str
    initial_cut: int
    passes: int
    total_moves: int
    pass_values: List[int] = field(default_factory=list)


def _move_gain(state: PartitionState, module: int, dst: int,
               objective: str) -> int:
    """Gain (objective decrease) of moving ``module`` to ``dst``."""
    hg = state.hg
    src = state.part_of[module]
    counts = state.counts
    active = state.active
    spans = state.spans
    gain = 0
    for e in hg.nets(module):
        if not active[e]:
            continue
        w = hg.net_weight(e)
        s = spans[e]
        s_after = s - (1 if counts[src][e] == 1 else 0) \
            + (1 if counts[dst][e] == 0 else 0)
        if objective == "cut":
            gain += w * ((1 if s > 1 else 0) - (1 if s_after > 1 else 0))
        else:  # soed
            before = w * s if s > 1 else 0
            after = w * s_after if s_after > 1 else 0
            gain += before - after
    return gain


def _gain_bound(hg: Hypergraph, max_net_size: int, objective: str) -> int:
    if csr_enabled():
        best = hg.csr.max_weighted_degree(max_net_size)
    else:
        active = [hg.net_size(e) <= max_net_size for e in hg.all_nets()]
        best = 0
        for v in hg.modules():
            d = sum(hg.net_weight(e) for e in hg.nets(v) if active[e])
            if d > best:
                best = d
    return 2 * best if objective == "soed" else best


def kway_partition(hg: Hypergraph,
                   k: int = 4,
                   initial: Optional[Partition] = None,
                   config: Optional[FMConfig] = None,
                   objective: str = "soed",
                   balance: Optional[BalanceConstraint] = None,
                   seed: SeedLike = None,
                   rng: Optional[random.Random] = None,
                   fixed: Optional[List[bool]] = None) -> KWayResult:
    """Refine (or create) a ``k``-way partitioning of ``hg``.

    ``fixed`` optionally marks modules that may never move — the paper's
    placement use-case pre-assigns I/O pads to clusters (Section III-C).
    """
    if k < 2:
        raise PartitionError(f"k must be >= 2, got {k}")
    if objective not in KWAY_OBJECTIVES:
        raise ConfigError(
            f"objective must be one of {KWAY_OBJECTIVES}, got {objective!r}")
    config = config or FMConfig()
    rng = rng if rng is not None else make_rng(seed)
    if balance is None:
        balance = BalanceConstraint.from_tolerance(hg, config.tolerance, k=k)

    if initial is None:
        initial = random_partition(hg, k=k, rng=rng)
    elif initial.k != k:
        raise PartitionError(
            f"initial partition has k={initial.k}, expected {k}")

    fixed = fixed if fixed is not None else [False] * hg.num_modules
    if len(fixed) != hg.num_modules:
        raise PartitionError(
            f"fixed has length {len(fixed)}, expected {hg.num_modules}")
    if not balance.is_feasible(initial.part_areas(hg)):
        initial = rebalance_random(hg, initial, balance, rng=rng,
                                   movable=[not f for f in fixed])

    active_list = _active_nets(hg, config.max_net_size)
    state = PartitionState(hg, initial, active_nets=active_list)
    max_gain = _gain_bound(hg, config.max_net_size, objective)
    bucket_range = 2 * max_gain if config.clip else max_gain

    def objective_value() -> int:
        return state.soed_weight if objective == "soed" else state.cut_weight

    initial_cut = cut(hg, initial)
    best_overall = objective_value()
    passes = 0
    total_moves = 0
    pass_values: List[int] = []
    max_passes = config.max_passes or 1000

    areas = hg.csr.areas_list if csr_enabled() else hg.areas()
    part_of = state.part_of
    lower, upper = balance.lower, balance.upper
    num_items = hg.num_modules * k

    while passes < max_passes:
        passes += 1
        gains = [0] * num_items
        movable = [v for v in hg.modules() if not fixed[v]]
        for v in movable:
            src = part_of[v]
            for dst in range(k):
                if dst != src:
                    gains[v * k + dst] = _move_gain(state, v, dst, objective)

        buckets = make_buckets(num_items, bucket_range,
                               config.bucket_policy, rng)
        items = [v * k + dst for v in movable
                 for dst in range(k) if dst != part_of[v]]
        if config.clip:
            items.sort(key=lambda it: gains[it])
            if config.bucket_policy == "fifo":
                items.reverse()
            for it in items:
                buckets.insert(it, 0)
            offsets = dict.fromkeys(items, 0)
        else:
            for it in items:
                buckets.insert(it, gains[it])
            offsets = None

        locked = [bool(f) for f in fixed]
        moves: List[Tuple[int, int]] = []
        best_value = objective_value()
        best_index = 0
        stall = 0

        while len(buckets):
            chosen = -1
            for it in buckets.iter_desc():
                v, dst = divmod(it, k)
                src = part_of[v]
                a = areas[v]
                if (state.part_area[src] - a >= lower
                        and state.part_area[dst] + a <= upper):
                    chosen = it
                    break
            if chosen < 0:
                break
            v, dst = divmod(chosen, k)
            src = part_of[v]
            # Lock the module: drop all of its candidate moves.
            for q in range(k):
                if q != src and buckets.contains(v * k + q):
                    buckets.remove(v * k + q)
            locked[v] = True

            # Collect neighbours before mutating counts.
            neighbours = set()
            for e in hg.nets(v):
                if state.active[e]:
                    for u in hg.pins(e):
                        if not locked[u]:
                            neighbours.add(u)

            state.move(v, dst)
            moves.append((v, src))
            total_moves += 1

            # Recompute the affected neighbours' gains from counts.
            for u in neighbours:
                usrc = part_of[u]
                for q in range(k):
                    if q == usrc:
                        continue
                    it = u * k + q
                    new_gain = _move_gain(state, u, q, objective)
                    if offsets is None:
                        if gains[it] != new_gain:
                            gains[it] = new_gain
                            buckets.update(it, new_gain)
                    else:
                        # CLIP: bucket position tracks the change since
                        # the pass started.
                        delta = new_gain - gains[it]
                        if delta:
                            gains[it] = new_gain
                            offsets[it] += delta
                            buckets.update(it, offsets[it])

            value = objective_value()
            if value < best_value:
                best_value = value
                best_index = len(moves)
                stall = 0
            else:
                stall += 1
                if (config.early_exit_stall is not None
                        and stall >= config.early_exit_stall):
                    break

        for v, original in reversed(moves[best_index:]):
            state.move(v, original)
        pass_values.append(objective_value())

        if objective_value() >= best_overall:
            break
        best_overall = objective_value()

    final = state.to_partition()
    return KWayResult(partition=final,
                      cut=cut(hg, final),
                      soed=soed(hg, final),
                      objective=objective,
                      initial_cut=initial_cut,
                      passes=passes,
                      total_moves=total_moves,
                      pass_values=pass_values)
