"""Gain bucket data structures with LIFO / FIFO / RANDOM disciplines.

The FM algorithm keeps free modules in an array of buckets indexed by
gain.  Which module is returned from the highest non-empty bucket is a
tie-breaking *policy*, and Section II-A of the paper shows the policy
matters enormously: LIFO far outperforms FIFO, and RANDOM is roughly as
good as LIFO but slower inside a linked-list implementation.

Two implementations share one interface:

* :class:`LinkedListBuckets` — an intrusive doubly-linked list over
  module-indexed arrays, O(1) insert/remove at either end.  ``lifo``
  inserts at the head, ``fifo`` at the tail; selection is always from
  the head.  This mirrors the original FM bucket description [15].
* :class:`RandomBuckets` — per-bucket arrays with swap-remove, O(1)
  arbitrary removal and O(1) uniform selection.

Gain indices may be any integer in ``[-max_gain, +max_gain]``; CLIP
doubles ``max_gain`` (Section II-B).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from ..errors import ConfigError
from ..rng import make_rng

__all__ = ["GainBuckets", "LinkedListBuckets", "RandomBuckets",
           "make_buckets", "BUCKET_POLICIES"]

BUCKET_POLICIES = ("lifo", "fifo", "random")

_NIL = -1


class GainBuckets:
    """Interface shared by the bucket implementations."""

    def insert(self, item: int, gain: int) -> None:
        raise NotImplementedError

    def remove(self, item: int) -> None:
        raise NotImplementedError

    def update(self, item: int, new_gain: int) -> None:
        """Move ``item`` to the bucket for ``new_gain``.

        Re-insertion follows the same policy as a fresh insert, which is
        what gives LIFO its "locality" behaviour: a module whose gain
        just changed goes to the head of its new bucket and is likely to
        be selected next.
        """
        self.remove(item)
        self.insert(item, new_gain)

    def contains(self, item: int) -> bool:
        raise NotImplementedError

    def gain_of(self, item: int) -> int:
        raise NotImplementedError

    def pop_max(self) -> Optional[int]:
        """Remove and return the policy's choice from the top bucket."""
        for item in self.iter_desc():
            self.remove(item)
            return item
        return None

    def iter_desc(self) -> Iterator[int]:
        """Yield items in selection order (best bucket first).

        The structure must not be mutated while iterating, except that
        the caller may stop and then remove the last yielded item; the
        engines use this to find the best *feasible* move.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LinkedListBuckets(GainBuckets):
    """Doubly-linked bucket lists (LIFO and FIFO disciplines)."""

    __slots__ = ("_max_gain", "_lifo", "_head", "_tail", "_next", "_prev",
                 "_gain", "_present", "_size", "_top")

    def __init__(self, num_items: int, max_gain: int, policy: str = "lifo"):
        if policy not in ("lifo", "fifo"):
            raise ConfigError(
                f"LinkedListBuckets supports 'lifo'/'fifo', got {policy!r}")
        if max_gain < 0:
            raise ConfigError(f"max_gain must be >= 0, got {max_gain}")
        self._max_gain = max_gain
        self._lifo = policy == "lifo"
        width = 2 * max_gain + 1
        self._head = [_NIL] * width
        self._tail = [_NIL] * width
        self._next = [_NIL] * num_items
        self._prev = [_NIL] * num_items
        self._gain = [0] * num_items
        self._present = [False] * num_items
        self._size = 0
        self._top = -1  # highest possibly non-empty bucket index

    def _index(self, gain: int) -> int:
        idx = gain + self._max_gain
        if not 0 <= idx < 2 * self._max_gain + 1:
            raise ConfigError(
                f"gain {gain} outside [-{self._max_gain}, {self._max_gain}]")
        return idx

    def insert(self, item: int, gain: int) -> None:
        if self._present[item]:
            raise ConfigError(f"item {item} already in buckets")
        idx = self._index(gain)
        if self._lifo:
            old = self._head[idx]
            self._next[item] = old
            self._prev[item] = _NIL
            self._head[idx] = item
            if old == _NIL:
                self._tail[idx] = item
            else:
                self._prev[old] = item
        else:
            old = self._tail[idx]
            self._prev[item] = old
            self._next[item] = _NIL
            self._tail[idx] = item
            if old == _NIL:
                self._head[idx] = item
            else:
                self._next[old] = item
        self._gain[item] = gain
        self._present[item] = True
        self._size += 1
        if idx > self._top:
            self._top = idx

    def remove(self, item: int) -> None:
        if not self._present[item]:
            raise ConfigError(f"item {item} not in buckets")
        idx = self._gain[item] + self._max_gain
        nxt, prv = self._next[item], self._prev[item]
        if prv == _NIL:
            self._head[idx] = nxt
        else:
            self._next[prv] = nxt
        if nxt == _NIL:
            self._tail[idx] = prv
        else:
            self._prev[nxt] = prv
        self._present[item] = False
        self._size -= 1
        if idx == self._top and self._head[idx] == _NIL:
            self._settle_top()

    def _settle_top(self) -> None:
        # Max-gain cursor maintenance: drop ``_top`` to the highest
        # non-empty bucket so the next selection starts there instead
        # of rescanning the empty prefix.  Amortised O(1): every
        # downward step was paid for by an earlier insert that raised
        # the cursor.
        top = self._top
        head = self._head
        while top >= 0 and head[top] == _NIL:
            top -= 1
        self._top = top

    def update(self, item: int, new_gain: int) -> None:
        # One relink instead of remove() + insert(): the FM engines
        # call this once per touched pin, making it the single
        # hottest bucket operation.  Semantics are identical — the
        # item leaves its old bucket and enters the new one at the
        # policy's insertion end.
        if not self._present[item]:
            raise ConfigError(f"item {item} not in buckets")
        new_idx = self._index(new_gain)
        old_idx = self._gain[item] + self._max_gain
        head = self._head
        tail = self._tail
        nxt_a = self._next
        prv_a = self._prev
        nxt, prv = nxt_a[item], prv_a[item]
        if prv == _NIL:
            head[old_idx] = nxt
        else:
            nxt_a[prv] = nxt
        if nxt == _NIL:
            tail[old_idx] = prv
        else:
            prv_a[nxt] = prv
        if self._lifo:
            old = head[new_idx]
            nxt_a[item] = old
            prv_a[item] = _NIL
            head[new_idx] = item
            if old == _NIL:
                tail[new_idx] = item
            else:
                prv_a[old] = item
        else:
            old = tail[new_idx]
            prv_a[item] = old
            nxt_a[item] = _NIL
            tail[new_idx] = item
            if old == _NIL:
                head[new_idx] = item
            else:
                nxt_a[old] = item
        self._gain[item] = new_gain
        if new_idx > self._top:
            self._top = new_idx
        elif old_idx == self._top and head[old_idx] == _NIL:
            self._settle_top()

    def contains(self, item: int) -> bool:
        return self._present[item]

    def fill(self, items, gains) -> None:
        """Bulk-insert absent ``items`` with per-item ``gains[item]``.

        Equivalent to ``for v in items: insert(v, gains[v])`` but with
        the per-item linking inlined — the FM engines seed every pass
        through this.  Precondition (unchecked): no item is already
        present and every gain is within range; the engines guarantee
        both.
        """
        head = self._head
        tail = self._tail
        nxt = self._next
        prv = self._prev
        gain_arr = self._gain
        present = self._present
        max_gain = self._max_gain
        width = 2 * max_gain + 1
        top = self._top
        n = 0
        if self._lifo:
            for item in items:
                gain = gains[item]
                idx = gain + max_gain
                if not 0 <= idx < width:
                    raise ConfigError(
                        f"gain {gain} outside [-{max_gain}, {max_gain}]")
                old = head[idx]
                nxt[item] = old
                prv[item] = _NIL
                head[idx] = item
                if old == _NIL:
                    tail[idx] = item
                else:
                    prv[old] = item
                gain_arr[item] = gain
                present[item] = True
                n += 1
                if idx > top:
                    top = idx
        else:
            for item in items:
                gain = gains[item]
                idx = gain + max_gain
                if not 0 <= idx < width:
                    raise ConfigError(
                        f"gain {gain} outside [-{max_gain}, {max_gain}]")
                old = tail[idx]
                prv[item] = old
                nxt[item] = _NIL
                tail[idx] = item
                if old == _NIL:
                    head[idx] = item
                else:
                    nxt[old] = item
                gain_arr[item] = gain
                present[item] = True
                n += 1
                if idx > top:
                    top = idx
        self._size += n
        self._top = top

    def fill_uniform(self, items, gain: int) -> None:
        """Bulk-insert absent ``items`` into one bucket, in order.

        Equivalent to ``for v in items: insert(v, gain)`` (CLIP's
        concatenation into the zero bucket).  Same unchecked
        precondition as :meth:`fill`.
        """
        idx = self._index(gain)
        nxt = self._next
        prv = self._prev
        gain_arr = self._gain
        present = self._present
        # Sequential head-insertion (LIFO) reverses the order;
        # sequential tail-insertion (FIFO) preserves it.  Build the
        # final chain directly and splice it in.
        chain = list(items)
        if not chain:
            return
        first = chain[-1] if self._lifo else chain[0]
        last = chain[0] if self._lifo else chain[-1]
        if self._lifo:
            chain.reverse()
        previous = _NIL
        for item in chain:
            prv[item] = previous
            if previous != _NIL:
                nxt[previous] = item
            gain_arr[item] = gain
            present[item] = True
            previous = item
        nxt[last] = _NIL
        if self._lifo:
            # The whole chain goes in front of any existing content.
            old_head = self._head[idx]
            nxt[last] = old_head
            if old_head == _NIL:
                self._tail[idx] = last
            else:
                prv[old_head] = first
            self._head[idx] = first
        else:
            # The whole chain is appended after any existing content.
            old_tail = self._tail[idx]
            prv[first] = old_tail
            if old_tail == _NIL:
                self._head[idx] = first
            else:
                nxt[old_tail] = first
            self._tail[idx] = last
        self._size += len(chain)
        if idx > self._top:
            self._top = idx

    def gain_of(self, item: int) -> int:
        if not self._present[item]:
            raise ConfigError(f"item {item} not in buckets")
        return self._gain[item]

    def iter_desc(self) -> Iterator[int]:
        # Walk from the top bucket down, each list head-first.  While
        # skipping empty buckets at the very top we also settle the
        # lazy ``_top`` pointer for future calls.
        idx = self._top
        settling = True
        head = self._head
        nxt = self._next
        while idx >= 0:
            item = head[idx]
            if item == _NIL:
                if settling:
                    self._top = idx - 1
                idx -= 1
                continue
            if settling:
                self._top = idx
                settling = False
            while item != _NIL:
                yield item
                item = nxt[item]
            idx -= 1

    def __len__(self) -> int:
        return self._size


class RandomBuckets(GainBuckets):
    """Array buckets with uniform-random selection within each bucket."""

    __slots__ = ("_max_gain", "_buckets", "_pos", "_gain", "_present",
                 "_size", "_top", "_rng")

    def __init__(self, num_items: int, max_gain: int,
                 rng: Optional[random.Random] = None):
        if max_gain < 0:
            raise ConfigError(f"max_gain must be >= 0, got {max_gain}")
        self._max_gain = max_gain
        self._buckets: List[List[int]] = [[] for _ in
                                          range(2 * max_gain + 1)]
        self._pos = [_NIL] * num_items
        self._gain = [0] * num_items
        self._present = [False] * num_items
        self._size = 0
        self._top = -1
        self._rng = rng if rng is not None else make_rng(None)

    def _index(self, gain: int) -> int:
        idx = gain + self._max_gain
        if not 0 <= idx < 2 * self._max_gain + 1:
            raise ConfigError(
                f"gain {gain} outside [-{self._max_gain}, {self._max_gain}]")
        return idx

    def insert(self, item: int, gain: int) -> None:
        if self._present[item]:
            raise ConfigError(f"item {item} already in buckets")
        idx = self._index(gain)
        bucket = self._buckets[idx]
        self._pos[item] = len(bucket)
        bucket.append(item)
        self._gain[item] = gain
        self._present[item] = True
        self._size += 1
        if idx > self._top:
            self._top = idx

    def remove(self, item: int) -> None:
        if not self._present[item]:
            raise ConfigError(f"item {item} not in buckets")
        idx = self._gain[item] + self._max_gain
        bucket = self._buckets[idx]
        pos = self._pos[item]
        last = bucket.pop()
        if last != item:
            bucket[pos] = last
            self._pos[last] = pos
        self._pos[item] = _NIL
        self._present[item] = False
        self._size -= 1

    def contains(self, item: int) -> bool:
        return self._present[item]

    def gain_of(self, item: int) -> int:
        if not self._present[item]:
            raise ConfigError(f"item {item} not in buckets")
        return self._gain[item]

    def iter_desc(self) -> Iterator[int]:
        idx = self._top
        settling = True
        while idx >= 0:
            bucket = self._buckets[idx]
            if not bucket:
                if settling:
                    self._top = idx - 1
                idx -= 1
                continue
            if settling:
                self._top = idx
                settling = False
            # A fresh random order per visit, so the first yielded item
            # is a uniform choice from the top bucket.
            order = list(bucket)
            self._rng.shuffle(order)
            yield from order
            idx -= 1

    def __len__(self) -> int:
        return self._size


def make_buckets(num_items: int, max_gain: int, policy: str,
                 rng: Optional[random.Random] = None) -> GainBuckets:
    """Factory over the three bucket disciplines of Section II-A."""
    if policy in ("lifo", "fifo"):
        return LinkedListBuckets(num_items, max_gain, policy)
    if policy == "random":
        return RandomBuckets(num_items, max_gain, rng)
    raise ConfigError(
        f"unknown bucket policy {policy!r}; expected one of "
        f"{BUCKET_POLICIES}")
