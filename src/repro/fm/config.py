"""Configuration for the FM-family iterative engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from .buckets import BUCKET_POLICIES

__all__ = ["FMConfig", "DEFAULT_MAX_NET_SIZE"]

#: Nets larger than this are ignored during refinement (Section III-B);
#: they are re-included when final quality is measured.
DEFAULT_MAX_NET_SIZE = 200


@dataclass(frozen=True)
class FMConfig:
    """Knobs for :func:`repro.fm.fm_bipartition` and the k-way engine.

    Attributes
    ----------
    bucket_policy:
        Tie-breaking discipline of the gain buckets: ``"lifo"`` (the
        paper's choice), ``"fifo"``, or ``"random"`` (Section II-A).
    clip:
        Enable the CLIP preprocessing of Dutt–Deng [14]: after initial
        gains are computed, all buckets are concatenated (ordered by
        descending initial gain) into the zero bucket and the index
        range doubles, so bucket position tracks the gain *change* since
        the pass started (Section II-B).
    tolerance:
        Balance tolerance ``r``; used only when the caller does not
        supply an explicit :class:`~repro.partition.BalanceConstraint`.
    max_net_size:
        Nets with more modules than this are excluded from refinement.
    max_passes:
        Upper bound on passes; ``None`` means run until a pass fails to
        improve (the classic FM stopping rule).
    early_exit_stall:
        If set, a pass aborts after this many consecutive moves without
        improving the pass-best cut — the Chaco/Metis-style early pass
        termination the paper lists as future work (Section V).
        ``None`` (default) reproduces the paper's full passes.
    boundary:
        Boundary refinement (Section V future work, after Chaco [22]):
        only modules incident to cut nets are initially inserted into
        the gain buckets; other modules' gains are computed on demand
        when a move pulls them onto the boundary.  Cuts CPU sharply on
        good starting solutions (exactly the multilevel refinement
        case).  Incompatible with ``clip``, whose bucket concatenation
        needs every module's initial gain.
    lookahead:
        Krishnamurthy-style lookahead depth ``r`` [31].  ``1`` (default)
        is plain FM selection.  For ``r > 1``, ties in the top gain
        bucket are broken by comparing level-2..r gains: the level-k
        gain of ``v`` in part A counts nets that become uncuttable-free
        after ``k`` same-side moves starting with ``v`` (positive term:
        no locked A pins and exactly ``k`` free A pins) minus nets
        whose escape potential ``v``'s move destroys (negative term: no
        locked B pins and exactly ``k - 1`` free B pins).  Combining
        ``clip=True, lookahead=3`` gives the CL-LA3 configuration of
        Dutt-Deng that Table VII compares against; the paper's own
        engines keep ``lookahead=1`` (Section II-A: LIFO negates its
        advantage for plain FM) and leave the CLIP+lookahead combination
        as future work (Section V).
    """

    bucket_policy: str = "lifo"
    clip: bool = False
    tolerance: float = 0.1
    max_net_size: int = DEFAULT_MAX_NET_SIZE
    max_passes: Optional[int] = None
    early_exit_stall: Optional[int] = None
    boundary: bool = False
    lookahead: int = 1

    def __post_init__(self):
        if self.bucket_policy not in BUCKET_POLICIES:
            raise ConfigError(
                f"bucket_policy must be one of {BUCKET_POLICIES}, got "
                f"{self.bucket_policy!r}")
        if not 0 <= self.tolerance < 1:
            raise ConfigError(
                f"tolerance must be in [0, 1), got {self.tolerance}")
        if self.max_net_size < 2:
            raise ConfigError(
                f"max_net_size must be >= 2, got {self.max_net_size}")
        if self.max_passes is not None and self.max_passes < 1:
            raise ConfigError(
                f"max_passes must be >= 1, got {self.max_passes}")
        if self.early_exit_stall is not None and self.early_exit_stall < 1:
            raise ConfigError(
                f"early_exit_stall must be >= 1, got "
                f"{self.early_exit_stall}")
        if self.boundary and self.clip:
            raise ConfigError(
                "boundary refinement cannot be combined with CLIP: the "
                "CLIP concatenation requires every module's initial gain")
        if not 1 <= self.lookahead <= 8:
            raise ConfigError(
                f"lookahead must be in [1, 8], got {self.lookahead}")
