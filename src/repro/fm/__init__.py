"""Iterative-improvement engines: FM, CLIP, and multi-way FM, with the
LIFO/FIFO/RANDOM gain-bucket disciplines of Section II."""

from .buckets import (BUCKET_POLICIES, GainBuckets, LinkedListBuckets,
                      RandomBuckets, make_buckets)
from .clip import clip_bipartition, clip_config
from .config import DEFAULT_MAX_NET_SIZE, FMConfig
from .engine import FMResult, fm_bipartition
from .kway import KWAY_OBJECTIVES, KWayResult, kway_partition

__all__ = [
    "FMConfig",
    "DEFAULT_MAX_NET_SIZE",
    "FMResult",
    "fm_bipartition",
    "clip_bipartition",
    "clip_config",
    "KWayResult",
    "kway_partition",
    "KWAY_OBJECTIVES",
    "GainBuckets",
    "LinkedListBuckets",
    "RandomBuckets",
    "make_buckets",
    "BUCKET_POLICIES",
]
