"""The Fiduccia–Mattheyses bipartitioning engine.

Implements classic FM (Section I) with the paper's specifics:

* gain buckets with a configurable LIFO/FIFO/RANDOM discipline
  (Section II-A, Table II),
* optional CLIP preprocessing of each pass (Section II-B, Table III),
* balance bounds ``A(V)/2 ± max(A(v*), r·A(V))`` (Section III-B),
* nets larger than ``max_net_size`` (200) excluded from refinement but
  re-included when quality is measured,
* rebalancing of infeasible initial solutions by random moves.

A *pass* moves previously-unmoved modules one at a time, always taking
the highest-gain balance-feasible module, and finally rolls the solution
back to the best prefix of the pass.  Passes repeat until one fails to
improve the cut.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..partition import (BalanceConstraint, Partition, PartitionState, cut,
                         random_partition)
from ..partition.rebalance import rebalance_random
from ..rng import SeedLike, make_rng
from .buckets import make_buckets
from .config import FMConfig

__all__ = ["FMResult", "fm_bipartition"]


@dataclass
class FMResult:
    """Outcome of one FM (or CLIP) run.

    ``cut`` is measured on the *full* netlist (large nets re-included);
    ``internal_cut`` is the engine's view over active nets only.
    """

    partition: Partition
    cut: int
    internal_cut: int
    initial_cut: int
    passes: int
    total_moves: int
    pass_cuts: List[int] = field(default_factory=list)


def _active_nets(hg: Hypergraph, max_net_size: int) -> List[int]:
    return [e for e in hg.all_nets() if hg.net_size(e) <= max_net_size]


def _max_weighted_degree(hg: Hypergraph, active: List[bool]) -> int:
    best = 0
    for v in hg.modules():
        d = sum(hg.net_weight(e) for e in hg.nets(v) if active[e])
        if d > best:
            best = d
    return best


def _module_gain(state: PartitionState, v: int) -> int:
    """Weighted FM gain of moving module ``v`` to the other side."""
    hg = state.hg
    src = state.part_of[v]
    dst = 1 - src
    counts_src = state.counts[src]
    counts_dst = state.counts[dst]
    active = state.active
    g = 0
    for e in hg.nets(v):
        if not active[e]:
            continue
        w = hg.net_weight(e)
        if counts_src[e] == 1:
            g += w
        if counts_dst[e] == 0:
            g -= w
    return g


def _initial_gains(state: PartitionState) -> List[int]:
    """Weighted FM gain of moving each module to the other side."""
    return [_module_gain(state, v) for v in state.hg.modules()]


def _boundary_modules(state: PartitionState) -> List[int]:
    """Modules incident to at least one cut active net."""
    hg = state.hg
    spans = state.spans
    out = []
    for v in hg.modules():
        for e in hg.nets(v):
            if state.active[e] and spans[e] > 1:
                out.append(v)
                break
    return out


def _lookahead_vector(state: PartitionState, locked_counts, v: int,
                      depth: int):
    """Level-2..depth Krishnamurthy gains of ``v`` (see FMConfig docs).

    ``locked_counts[p][e]`` counts locked pins of net ``e`` in part
    ``p``; free pins are total pins minus locked ones.
    """
    hg = state.hg
    src = state.part_of[v]
    dst = 1 - src
    counts_src = state.counts[src]
    counts_dst = state.counts[dst]
    locked_src = locked_counts[src]
    locked_dst = locked_counts[dst]
    active = state.active
    vec = [0] * (depth - 1)
    for e in hg.nets(v):
        if not active[e]:
            continue
        w = hg.net_weight(e)
        lock_a = locked_src[e]
        lock_b = locked_dst[e]
        free_a = counts_src[e] - lock_a
        free_b = counts_dst[e] - lock_b
        for k in range(2, depth + 1):
            if lock_a == 0 and free_a == k:
                vec[k - 2] += w
            if lock_b == 0 and free_b == k - 1:
                vec[k - 2] -= w
    return tuple(vec)


def fm_bipartition(hg: Hypergraph,
                   initial: Optional[Partition] = None,
                   config: Optional[FMConfig] = None,
                   balance: Optional[BalanceConstraint] = None,
                   seed: SeedLike = None,
                   rng: Optional[random.Random] = None,
                   fixed: Optional[List[bool]] = None) -> FMResult:
    """Refine (or create) a bipartitioning of ``hg`` with FM.

    This is the ``FMPartition`` procedure of Figure 2: when ``initial``
    is ``None`` a random balanced starting solution is generated; an
    infeasible starting solution is first rebalanced by random moves.
    ``fixed`` marks modules that may never move (pre-assigned pads /
    propagated terminals, Section III-C); they keep their ``initial``
    side throughout.
    """
    config = config or FMConfig()
    rng = rng if rng is not None else make_rng(seed)
    if balance is None:
        balance = BalanceConstraint.from_tolerance(hg, config.tolerance, k=2)

    if initial is None:
        initial = random_partition(hg, k=2, rng=rng)
    elif initial.k != 2:
        raise PartitionError(
            f"fm_bipartition requires k=2, got k={initial.k}")
    if fixed is not None and len(fixed) != hg.num_modules:
        raise PartitionError(
            f"fixed has length {len(fixed)}, expected {hg.num_modules}")
    if not balance.is_feasible(initial.part_areas(hg)):
        movable = [not f for f in fixed] if fixed is not None else None
        initial = rebalance_random(hg, initial, balance, rng=rng,
                                   movable=movable)

    active_list = _active_nets(hg, config.max_net_size)
    state = PartitionState(hg, initial, active_nets=active_list)
    max_gain = _max_weighted_degree(hg, state.active)
    bucket_range = 2 * max_gain if config.clip else max_gain

    initial_cut = cut(hg, initial)
    best_overall = state.cut_weight
    passes = 0
    total_moves = 0
    pass_cuts: List[int] = []
    max_passes = config.max_passes or 1000

    areas = hg.areas()
    part_of = state.part_of
    counts = state.counts
    active = state.active
    lower, upper = balance.lower, balance.upper

    def is_movable(v: int) -> bool:
        return fixed is None or not fixed[v]

    while passes < max_passes:
        passes += 1
        buckets = make_buckets(hg.num_modules, bucket_range,
                               config.bucket_policy, rng)

        if config.clip:
            # CLIP: concatenate all buckets into the zero bucket, best
            # initial gain first, then track only gain *changes*.  With
            # LIFO insertion (at head) ascending order leaves the best
            # gain at the head; with FIFO (at tail) descending does.
            gains = _initial_gains(state)
            order = sorted((v for v in hg.modules() if is_movable(v)),
                           key=lambda v: gains[v])
            if config.bucket_policy == "fifo":
                order.reverse()
            for v in order:
                buckets.insert(v, 0)
            gains = [0] * hg.num_modules
        elif config.boundary:
            # Boundary refinement (Section V / Chaco [22]): only
            # cut-incident modules enter the structure; the rest are
            # inserted on demand when a move pulls them onto the
            # boundary.
            gains = [0] * hg.num_modules
            for v in _boundary_modules(state):
                if is_movable(v):
                    gains[v] = _module_gain(state, v)
                    buckets.insert(v, gains[v])
        else:
            gains = _initial_gains(state)
            for v in hg.modules():
                if is_movable(v):
                    buckets.insert(v, gains[v])

        locked = [bool(f) for f in fixed] if fixed is not None \
            else [False] * hg.num_modules
        locked_counts = ([[0] * hg.num_nets, [0] * hg.num_nets]
                         if config.lookahead > 1 else None)
        if locked_counts is not None and fixed is not None:
            # Pre-assigned modules behave as locked pins for the
            # lookahead binding numbers from the very start.
            for v in hg.modules():
                if fixed[v]:
                    side = part_of[v]
                    for e in hg.nets(v):
                        if active[e]:
                            locked_counts[side][e] += 1
        moves: List[Tuple[int, int]] = []  # (module, original part)
        pass_start_cut = state.cut_weight
        best_cut = pass_start_cut
        best_index = 0  # number of moves forming the best prefix
        stall = 0

        pending: set = set()
        if config.boundary:
            def bump(u, delta):
                if buckets.contains(u):
                    gains[u] += delta
                    buckets.update(u, gains[u])
                else:
                    # Newly on the boundary.  Its full gain is computed
                    # once, from the post-move counts, after both update
                    # phases finish — applying per-net deltas here would
                    # double-count nets the fresh computation already
                    # sees.
                    pending.add(u)
        else:
            def bump(u, delta):
                gains[u] += delta
                buckets.update(u, gains[u])

        while len(buckets):
            chosen = -1
            if locked_counts is None:
                for v in buckets.iter_desc():
                    src = part_of[v]
                    a = areas[v]
                    if (state.part_area[src] - a >= lower
                            and state.part_area[1 - src] + a <= upper):
                        chosen = v
                        break
            else:
                # Lookahead: among the feasible members of the best
                # bucket (all tied on level-1 gain), pick the largest
                # level-2..r gain vector; first-seen (LIFO) wins ties.
                best_vec = None
                chosen_gain = 0
                for v in buckets.iter_desc():
                    if chosen >= 0 and gains[v] != chosen_gain:
                        break
                    src = part_of[v]
                    a = areas[v]
                    if not (state.part_area[src] - a >= lower
                            and state.part_area[1 - src] + a <= upper):
                        continue
                    vec = _lookahead_vector(state, locked_counts, v,
                                            config.lookahead)
                    if chosen < 0 or vec > best_vec:
                        chosen = v
                        best_vec = vec
                        chosen_gain = gains[v]
            if chosen < 0:
                break  # no feasible move remains
            buckets.remove(chosen)
            locked[chosen] = True
            src = part_of[chosen]
            dst = 1 - src

            # Gain updates, phase A: inspect pre-move counts.
            for e in hg.nets(chosen):
                if not active[e]:
                    continue
                w = hg.net_weight(e)
                cd = counts[dst][e]
                if cd == 0:
                    for u in hg.pins(e):
                        if not locked[u]:
                            bump(u, w)
                elif cd == 1:
                    for u in hg.pins(e):
                        if not locked[u] and part_of[u] == dst:
                            bump(u, -w)
                            break

            state.move(chosen, dst)
            moves.append((chosen, src))
            total_moves += 1
            if locked_counts is not None:
                bumped = locked_counts[dst]
                for e in hg.nets(chosen):
                    if active[e]:
                        bumped[e] += 1

            # Gain updates, phase B: inspect post-move counts.
            for e in hg.nets(chosen):
                if not active[e]:
                    continue
                w = hg.net_weight(e)
                cs = counts[src][e]
                if cs == 0:
                    for u in hg.pins(e):
                        if not locked[u]:
                            bump(u, -w)
                elif cs == 1:
                    for u in hg.pins(e):
                        if not locked[u] and part_of[u] == src:
                            bump(u, w)
                            break

            if pending:
                for u in pending:
                    gains[u] = _module_gain(state, u)
                    buckets.insert(u, gains[u])
                pending.clear()

            if state.cut_weight < best_cut:
                best_cut = state.cut_weight
                best_index = len(moves)
                stall = 0
            else:
                stall += 1
                if (config.early_exit_stall is not None
                        and stall >= config.early_exit_stall):
                    break

        # Roll back to the best prefix of the pass.
        for v, original in reversed(moves[best_index:]):
            state.move(v, original)
        pass_cuts.append(state.cut_weight)

        if state.cut_weight >= best_overall:
            break
        best_overall = state.cut_weight

    final = state.to_partition()
    return FMResult(partition=final,
                    cut=cut(hg, final),
                    internal_cut=state.cut_weight,
                    initial_cut=initial_cut,
                    passes=passes,
                    total_moves=total_moves,
                    pass_cuts=pass_cuts)
