"""The Fiduccia–Mattheyses bipartitioning engine.

Implements classic FM (Section I) with the paper's specifics:

* gain buckets with a configurable LIFO/FIFO/RANDOM discipline
  (Section II-A, Table II),
* optional CLIP preprocessing of each pass (Section II-B, Table III),
* balance bounds ``A(V)/2 ± max(A(v*), r·A(V))`` (Section III-B),
* nets larger than ``max_net_size`` (200) excluded from refinement but
  re-included when quality is measured,
* rebalancing of infeasible initial solutions by random moves.

A *pass* moves previously-unmoved modules one at a time, always taking
the highest-gain balance-feasible module, and finally rolls the solution
back to the best prefix of the pass.  Passes repeat until one fails to
improve the cut.

Every hot kernel — initial gains, boundary scan, the two-phase gain
update loop of a pass — exists in families selected by
:mod:`repro.kernels`: the default CSR family binds the flat incidence
layer (``hg.csr``) into locals and inlines the per-pin gain bumps; the
``_reference`` family preserves the original accessor-walking code as
the correctness oracle and benchmark baseline.  Those two run the same
arithmetic in the same order (identical move sequences, identical RNG
draws), which the golden-cut tests pin.  The ``numpy`` mode keeps the
same sequential pass on small netlists but replaces it with the
batched vectorized loop of :mod:`repro.fm.npengine` above
``NP_ENGINE_MIN_MODULES`` modules (its own golden cuts; DESIGN.md
§13).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..kernels import csr_enabled, kernel_mode, numpy_enabled
from ..obs import metrics, recorder, tracer
from ..partition import (BalanceConstraint, Partition, PartitionState, cut,
                         random_partition)
from ..partition.rebalance import rebalance_random
from ..rng import SeedLike, make_rng
from .buckets import _NIL, LinkedListBuckets, make_buckets
from .config import FMConfig
from .npengine import NP_ENGINE_MIN_MODULES, batch_refine, repair_balance

__all__ = ["FMResult", "fm_bipartition"]


@dataclass
class FMResult:
    """Outcome of one FM (or CLIP) run.

    ``cut`` is measured on the *full* netlist (large nets re-included);
    ``internal_cut`` is the engine's view over active nets only.
    """

    partition: Partition
    cut: int
    internal_cut: int
    initial_cut: int
    passes: int
    total_moves: int
    pass_cuts: List[int] = field(default_factory=list)


def _active_nets(hg: Hypergraph, max_net_size: int) -> Sequence[int]:
    """Nets small enough to refine; cached on the CSR layer."""
    if csr_enabled():
        return hg.csr.active_nets(max_net_size)
    return [e for e in hg.all_nets() if hg.net_size(e) <= max_net_size]


def _max_weighted_degree(hg: Hypergraph, active: List[bool]) -> int:
    """Reference gain bound over an arbitrary active-flag vector."""
    best = 0
    for v in hg.modules():
        d = sum(hg.net_weight(e) for e in hg.nets(v) if active[e])
        if d > best:
            best = d
    return best


def _module_gain(state: PartitionState, v: int) -> int:
    """Weighted FM gain of moving module ``v`` to the other side."""
    if csr_enabled():
        return _module_gain_csr(state, v)
    return _module_gain_reference(state, v)


def _module_gain_csr(state: PartitionState, v: int) -> int:
    view = state.hg.csr
    net_weights = view.weights_list
    src = state.part_of[v]
    counts_src = state.counts[src]
    counts_dst = state.counts[1 - src]
    active = state.active
    g = 0
    for e in view.module_nets[v]:
        if active[e]:
            w = net_weights[e]
            if counts_src[e] == 1:
                g += w
            if counts_dst[e] == 0:
                g -= w
    return g


def _module_gain_reference(state: PartitionState, v: int) -> int:
    hg = state.hg
    src = state.part_of[v]
    dst = 1 - src
    counts_src = state.counts[src]
    counts_dst = state.counts[dst]
    active = state.active
    g = 0
    for e in hg.nets(v):
        if not active[e]:
            continue
        w = hg.net_weight(e)
        if counts_src[e] == 1:
            g += w
        if counts_dst[e] == 0:
            g -= w
    return g


def _initial_gains(state: PartitionState) -> List[int]:
    """Weighted FM gain of moving each module to the other side."""
    if not csr_enabled():
        return [_module_gain_reference(state, v)
                for v in state.hg.modules()]
    if numpy_enabled() and state.k == 2:
        # Vectorized twin: one pin-parallel contribution sweep plus a
        # bincount reduction.  Integer adds commute, so the vector is
        # elementwise identical to both scalar kernels.
        import numpy as np
        npv = state.hg.csr.np
        part = np.asarray(state.part_of, dtype=np.int8)
        c0, c1 = npv.counts2(part)
        if len(state._active_nets) == npv.num_nets:
            pin_w = npv.pin_weights(None)
        else:
            mask = np.zeros(npv.num_nets, dtype=bool)
            mask[np.asarray(state._active_nets, dtype=np.int64)] = True
            pin_w = np.where(mask, npv.net_weights, 0)[npv.net_ids]
        return npv.initial_gains2(part, c0, c1, pin_w).tolist()
    # Single flat sweep: no per-module function call, no per-pin
    # accessor dispatch.  When every net is active (the usual case)
    # the per-visit flag test disappears as well.
    view = state.hg.csr
    module_nets = view.module_nets
    net_weights = view.weights_list
    part_of = state.part_of
    c0, c1 = state.counts[0], state.counts[1]
    gains = [0] * view.num_modules
    if len(state._active_nets) == view.num_nets:
        # Net-centric sweep: a net contributes to a pin's gain only
        # when one of its sides holds 0 or 1 pins, so split nets (the
        # common case) are skipped after two count lookups without
        # touching their pins.  Integer adds commute, so the vector is
        # identical to the module-centric accumulation.
        net_pins = view.net_pins
        for e, w in enumerate(net_weights):
            a = c0[e]
            b = c1[e]
            if a == 1:
                if b == 1:
                    for u in net_pins[e]:
                        gains[u] += w
                else:
                    for u in net_pins[e]:
                        if part_of[u] == 0:
                            gains[u] += w
                            break
            elif a == 0:
                for u in net_pins[e]:
                    gains[u] -= w
            elif b == 1:
                for u in net_pins[e]:
                    if part_of[u]:
                        gains[u] += w
                        break
            elif b == 0:
                for u in net_pins[e]:
                    gains[u] -= w
        return gains
    active = state.active
    for v, nets_v in enumerate(module_nets):
        if part_of[v]:
            counts_src, counts_dst = c1, c0
        else:
            counts_src, counts_dst = c0, c1
        g = 0
        for e in nets_v:
            if active[e]:
                w = net_weights[e]
                if counts_src[e] == 1:
                    g += w
                if counts_dst[e] == 0:
                    g -= w
        gains[v] = g
    return gains


def _boundary_modules(state: PartitionState) -> List[int]:
    """Modules incident to at least one cut active net."""
    if csr_enabled():
        view = state.hg.csr
        module_nets = view.module_nets
        spans = state.spans
        active = state.active
        out = []
        for v in range(view.num_modules):
            for e in module_nets[v]:
                if active[e] and spans[e] > 1:
                    out.append(v)
                    break
        return out
    hg = state.hg
    spans = state.spans
    out = []
    for v in hg.modules():
        for e in hg.nets(v):
            if state.active[e] and spans[e] > 1:
                out.append(v)
                break
    return out


def _lookahead_vector(state: PartitionState, locked_counts, v: int,
                      depth: int):
    """Level-2..depth Krishnamurthy gains of ``v`` (see FMConfig docs).

    ``locked_counts[p][e]`` counts locked pins of net ``e`` in part
    ``p``; free pins are total pins minus locked ones.
    """
    hg = state.hg
    src = state.part_of[v]
    dst = 1 - src
    counts_src = state.counts[src]
    counts_dst = state.counts[dst]
    locked_src = locked_counts[src]
    locked_dst = locked_counts[dst]
    active = state.active
    vec = [0] * (depth - 1)
    for e in hg.nets(v):
        if not active[e]:
            continue
        w = hg.net_weight(e)
        lock_a = locked_src[e]
        lock_b = locked_dst[e]
        free_a = counts_src[e] - lock_a
        free_b = counts_dst[e] - lock_b
        for k in range(2, depth + 1):
            if lock_a == 0 and free_a == k:
                vec[k - 2] += w
            if lock_b == 0 and free_b == k - 1:
                vec[k - 2] -= w
    return tuple(vec)


def _move_loop_csr(state: PartitionState, buckets, gains: List[int],
                   locked: List[bool], locked_counts, config: FMConfig,
                   areas, lower: float, upper: float
                   ) -> Tuple[List[Tuple[int, int]], int]:
    """One FM pass's select/move/update loop over the CSR layer.

    Mirrors :func:`_move_loop_reference` move for move; the speed comes
    from local bindings of the flat views, inlined gain bumps (the
    reference closure call per touched pin becomes two index ops), and
    the buckets' O(1) relink ``update``.  The common configuration —
    linked-list buckets, no boundary mode, no lookahead — takes the
    fully inlined :func:`_move_loop_csr_ll` below.

    With decision recording live, the inlined loop is bypassed: it
    replays exactly this loop's operation sequence (that is its
    docstring contract), so routing through here records the identical
    decisions while the hot path stays free of instrumentation.
    """
    rec = recorder()
    if (not rec.enabled and locked_counts is None and not config.boundary
            and type(buckets) is LinkedListBuckets and buckets._lifo
            and state._active_nets
            is state.hg.csr.active_nets(config.max_net_size)):
        return _move_loop_csr_ll(state, buckets, gains, locked, config,
                                 areas, lower, upper)
    rec_on = rec.enabled
    cut_prev = state.cut_weight
    state._pass_best = None
    hg = state.hg
    view = hg.csr
    module_nets = view.module_nets
    net_pins = view.net_pins
    net_weights = view.weights_list
    part_of = state.part_of
    counts = state.counts
    active = state.active
    part_area = state.part_area
    boundary = config.boundary
    early_stall = config.early_exit_stall
    update = buckets.update
    iter_desc = buckets.iter_desc

    moves: List[Tuple[int, int]] = []
    best_cut = state.cut_weight
    best_index = 0
    stall = 0

    pending: set = set()
    if boundary:
        contains = buckets.contains

        def bump(u, delta):
            if contains(u):
                gains[u] += delta
                update(u, gains[u])
            else:
                # Newly on the boundary; see _move_loop_reference.
                pending.add(u)

    while len(buckets):
        chosen = -1
        if locked_counts is None:
            for v in iter_desc():
                src = part_of[v]
                a = areas[v]
                if (part_area[src] - a >= lower
                        and part_area[1 - src] + a <= upper):
                    chosen = v
                    break
        else:
            best_vec = None
            chosen_gain = 0
            for v in iter_desc():
                if chosen >= 0 and gains[v] != chosen_gain:
                    break
                src = part_of[v]
                a = areas[v]
                if not (part_area[src] - a >= lower
                        and part_area[1 - src] + a <= upper):
                    continue
                vec = _lookahead_vector(state, locked_counts, v,
                                        config.lookahead)
                if chosen < 0 or vec > best_vec:
                    chosen = v
                    best_vec = vec
                    chosen_gain = gains[v]
        if chosen < 0:
            break  # no feasible move remains
        buckets.remove(chosen)
        locked[chosen] = True
        src = part_of[chosen]
        dst = 1 - src
        counts_dst = counts[dst]
        incident = module_nets[chosen]

        # Gain updates, phase A: inspect pre-move counts.
        for e in incident:
            if not active[e]:
                continue
            cd = counts_dst[e]
            if cd == 0:
                w = net_weights[e]
                if boundary:
                    for u in net_pins[e]:
                        if not locked[u]:
                            bump(u, w)
                else:
                    for u in net_pins[e]:
                        if not locked[u]:
                            g = gains[u] + w
                            gains[u] = g
                            update(u, g)
            elif cd == 1:
                w = net_weights[e]
                if boundary:
                    for u in net_pins[e]:
                        if not locked[u] and part_of[u] == dst:
                            bump(u, -w)
                            break
                else:
                    for u in net_pins[e]:
                        if not locked[u] and part_of[u] == dst:
                            g = gains[u] - w
                            gains[u] = g
                            update(u, g)
                            break

        state.move(chosen, dst)
        moves.append((chosen, src))
        if rec_on:
            cut_rec = state.cut_weight
            rec.emit({"t": "mv", "i": len(moves) - 1, "m": chosen,
                      "s": src, "g": cut_prev - cut_rec,
                      "bg": gains[chosen], "c": cut_rec,
                      "a0": part_area[0]})
            cut_prev = cut_rec
        if locked_counts is not None:
            bumped = locked_counts[dst]
            for e in incident:
                if active[e]:
                    bumped[e] += 1

        # Gain updates, phase B: inspect post-move counts.
        counts_src = counts[src]
        for e in incident:
            if not active[e]:
                continue
            cs = counts_src[e]
            if cs == 0:
                w = net_weights[e]
                if boundary:
                    for u in net_pins[e]:
                        if not locked[u]:
                            bump(u, -w)
                else:
                    for u in net_pins[e]:
                        if not locked[u]:
                            g = gains[u] - w
                            gains[u] = g
                            update(u, g)
            elif cs == 1:
                w = net_weights[e]
                if boundary:
                    for u in net_pins[e]:
                        if not locked[u] and part_of[u] == src:
                            bump(u, w)
                            break
                else:
                    for u in net_pins[e]:
                        if not locked[u] and part_of[u] == src:
                            g = gains[u] + w
                            gains[u] = g
                            update(u, g)
                            break

        if pending:
            for u in pending:
                gains[u] = _module_gain_csr(state, u)
                buckets.insert(u, gains[u])
            pending.clear()

        cut_now = state.cut_weight
        if cut_now < best_cut:
            best_cut = cut_now
            best_index = len(moves)
            stall = 0
        else:
            stall += 1
            if early_stall is not None and stall >= early_stall:
                break

    return moves, best_index


def _move_loop_csr_ll(state: PartitionState, buckets: LinkedListBuckets,
                      gains: List[int], locked: List[bool],
                      config: FMConfig, areas, lower: float, upper: float
                      ) -> Tuple[List[Tuple[int, int]], int]:
    """Fully inlined pass loop: CSR views + raw LIFO linked-list buckets.

    Replays exactly the operation sequence of the generic loop —
    selection scan, unlink of the chosen module, phase-A bumps, the
    move's count/span/objective bookkeeping, phase-B bumps — but with
    every bucket relink and every state update written out over the
    underlying arrays, so one module move costs only index arithmetic.
    Several local transformations keep the arithmetic identical while
    dropping per-visit work:

    * net sweeps iterate the pre-filtered ``active_incidence`` (no
      ``active[e]`` test per visit — the dispatch above guarantees the
      state's active set is exactly
      ``active_nets(config.max_net_size)``);
    * bucket positions live in index space (``gain + max_gain``), so
      the ``gains`` argument's per-bump mirror writes disappear;
    * the loop is LIFO-only (the dispatch checks ``buckets._lifo``):
      insertion is always at a bucket's head and headship is decided
      by ``head[idx] == u`` instead of a ``prev`` sentinel, so the
      ``tail`` array and the head elements' ``prev`` entries are never
      maintained — chain walks only follow ``next`` pointers, which
      are kept exact;
    * the move's bookkeeping and its phase-B bumps share one net sweep
      (net ``e``'s phase-B bumps read only net ``e``'s fresh source
      count, so the bucket-operation order matches a separate sweep);
    * a ``+w`` bump can only raise the max-gain cursor and a ``-w``
      bump can only settle it, so each bump site keeps just its half
      of the cursor maintenance.

    The loop *consumes* ``buckets``: on exit only the state structures
    (``part_of``/``counts``/``spans``/``part_area`` mutated in place,
    ``cut_weight``/``soed_weight`` written back) and ``locked`` are
    valid; the bucket object and the ``gains`` list are stale, and the
    caller rebuilds both for every pass.
    """
    view = state.hg.csr
    incident_of = view.active_incidence(config.max_net_size)
    net_pins = view.net_pins
    net_weights = view.weights_list
    part_of = state.part_of
    counts = state.counts
    part_area = state.part_area
    spans = state.spans
    early_stall = config.early_exit_stall

    head = buckets._head
    nxt = buckets._next
    prv = buckets._prev
    max_g = buckets._max_gain
    width = 2 * max_g + 1
    # Bucket positions are tracked in index space (gain + max_g), so
    # every bump saves the offset add.
    idx_of = [g + max_g for g in buckets._gain]
    top = buckets._top
    size = buckets._size

    cut_w = state.cut_weight
    soed_w = state.soed_weight

    moves: List[Tuple[int, int]] = []
    append_move = moves.append
    best_cut = cut_w
    best_soed = soed_w
    best_index = 0
    stall = 0

    while size:
        # --- selection: best-bucket-first scan for a feasible move,
        # settling the max-gain cursor over the empty prefix.
        chosen = -1
        idx = top
        settling = True
        while idx >= 0:
            item = head[idx]
            if item == _NIL:
                if settling:
                    top = idx - 1
                idx -= 1
                continue
            if settling:
                top = idx
                settling = False
            while item != _NIL:
                src = part_of[item]
                a = areas[item]
                if (part_area[src] - a >= lower
                        and part_area[1 - src] + a <= upper):
                    chosen = item
                    break
                item = nxt[item]
            if chosen >= 0:
                break
            idx -= 1
        if chosen < 0:
            break  # no feasible move remains

        # --- unlink the chosen module and lock it.
        cidx = idx_of[chosen]
        i_n = nxt[chosen]
        if head[cidx] == chosen:
            head[cidx] = i_n
        else:
            i_p = prv[chosen]
            nxt[i_p] = i_n
            if i_n != _NIL:
                prv[i_n] = i_p
        size -= 1
        if cidx == top and head[cidx] == _NIL:
            while top >= 0 and head[top] == _NIL:
                top -= 1
        locked[chosen] = True

        src = part_of[chosen]
        dst = 1 - src
        counts_src = counts[src]
        counts_dst = counts[dst]
        incident = incident_of[chosen]

        # --- gain updates, phase A: inspect pre-move counts.
        for e in incident:
            cd = counts_dst[e]
            if cd == 0:
                w = net_weights[e]
                for u in net_pins[e]:
                    if not locked[u]:
                        oidx = idx_of[u]
                        nidx = oidx + w
                        if nidx >= width:
                            raise PartitionError(
                                f"gain {nidx - max_g} outside bucket range")
                        u_n = nxt[u]
                        if head[oidx] == u:
                            head[oidx] = u_n
                        else:
                            u_p = prv[u]
                            nxt[u_p] = u_n
                            if u_n != _NIL:
                                prv[u_n] = u_p
                        old = head[nidx]
                        nxt[u] = old
                        head[nidx] = u
                        if old != _NIL:
                            prv[old] = u
                        idx_of[u] = nidx
                        if nidx > top:
                            top = nidx
            elif cd == 1:
                w = net_weights[e]
                for u in net_pins[e]:
                    if not locked[u] and part_of[u] == dst:
                        oidx = idx_of[u]
                        nidx = oidx - w
                        if nidx < 0:
                            raise PartitionError(
                                f"gain {nidx - max_g} outside bucket range")
                        u_n = nxt[u]
                        if head[oidx] == u:
                            head[oidx] = u_n
                        else:
                            u_p = prv[u]
                            nxt[u_p] = u_n
                            if u_n != _NIL:
                                prv[u_n] = u_p
                        old = head[nidx]
                        nxt[u] = old
                        head[nidx] = u
                        if old != _NIL:
                            prv[old] = u
                        idx_of[u] = nidx
                        if oidx == top and head[oidx] == _NIL:
                            while top >= 0 and head[top] == _NIL:
                                top -= 1
                        break

        # --- the move itself (PartitionState.move, inlined), fused
        # with phase B: net ``e``'s phase-B bumps depend only on net
        # ``e``'s fresh source count, so folding them into the
        # bookkeeping sweep leaves the bucket-operation order exactly
        # that of a separate post-move sweep.
        area = areas[chosen]
        part_of[chosen] = dst
        part_area[src] -= area
        part_area[dst] += area
        for e in incident:
            w = net_weights[e]
            s = spans[e]
            cs = counts_src[e] - 1
            counts_src[e] = cs
            if cs == 0:
                s -= 1
                soed_w -= w if s > 1 else (2 * w if s == 1 else 0)
                if s == 1:
                    cut_w -= w
            c = counts_dst[e] + 1
            counts_dst[e] = c
            if c == 1:
                s += 1
                soed_w += w if s > 2 else (2 * w if s == 2 else 0)
                if s == 2:
                    cut_w += w
            spans[e] = s
            # phase B for this net, off the freshly written counts.
            if cs == 0:
                for u in net_pins[e]:
                    if not locked[u]:
                        oidx = idx_of[u]
                        nidx = oidx - w
                        if nidx < 0:
                            raise PartitionError(
                                f"gain {nidx - max_g} outside bucket range")
                        u_n = nxt[u]
                        if head[oidx] == u:
                            head[oidx] = u_n
                        else:
                            u_p = prv[u]
                            nxt[u_p] = u_n
                            if u_n != _NIL:
                                prv[u_n] = u_p
                        old = head[nidx]
                        nxt[u] = old
                        head[nidx] = u
                        if old != _NIL:
                            prv[old] = u
                        idx_of[u] = nidx
                        if oidx == top and head[oidx] == _NIL:
                            while top >= 0 and head[top] == _NIL:
                                top -= 1
            elif cs == 1:
                for u in net_pins[e]:
                    if not locked[u] and part_of[u] == src:
                        oidx = idx_of[u]
                        nidx = oidx + w
                        if nidx >= width:
                            raise PartitionError(
                                f"gain {nidx - max_g} outside bucket range")
                        u_n = nxt[u]
                        if head[oidx] == u:
                            head[oidx] = u_n
                        else:
                            u_p = prv[u]
                            nxt[u_p] = u_n
                            if u_n != _NIL:
                                prv[u_n] = u_p
                        old = head[nidx]
                        nxt[u] = old
                        head[nidx] = u
                        if old != _NIL:
                            prv[old] = u
                        idx_of[u] = nidx
                        if nidx > top:
                            top = nidx
                        break
        append_move((chosen, src))

        if cut_w < best_cut:
            best_cut = cut_w
            best_soed = soed_w
            best_index = len(moves)
            stall = 0
        else:
            stall += 1
            if early_stall is not None and stall >= early_stall:
                break

    state.cut_weight = cut_w
    state.soed_weight = soed_w
    state._pass_best = (best_cut, best_soed)
    return moves, best_index


def _rollback_csr(state: PartitionState, moves: List[Tuple[int, int]],
                  best_index: int, incident_of) -> None:
    """Undo ``moves[best_index:]`` with the view locals bound once.

    Identical arithmetic to calling ``state.move(v, original)`` per
    undone move (every undone module really changes side, so the
    same-part early-out never fires), without 10k+ method calls per
    pass on large circuits.  ``incident_of`` is the active-filtered
    incidence matching the state's active set.

    When the pass loop has recorded the objective values at the best
    prefix (``state._pass_best``, set by the inlined LIFO loop), the
    per-net cut/SOED arithmetic is skipped entirely — counts and spans
    are still restored net by net, but the objectives are simply reset
    to the recorded pair, which is what the replay would reproduce.
    """
    tail_moves = moves[best_index:]
    final = state._pass_best
    if not tail_moves:
        if final is not None:
            state.cut_weight, state.soed_weight = final
        return
    view = state.hg.csr
    net_weights = view.weights_list
    areas = view.areas_list
    part_of = state.part_of
    counts = state.counts
    part_area = state.part_area
    spans = state.spans
    if final is not None:
        for v, original in reversed(tail_moves):
            src = part_of[v]
            area = areas[v]
            part_of[v] = original
            part_area[src] -= area
            part_area[original] += area
            counts_src = counts[src]
            counts_dst = counts[original]
            for e in incident_of[v]:
                c = counts_src[e] - 1
                counts_src[e] = c
                if c == 0:
                    spans[e] -= 1
                c = counts_dst[e] + 1
                counts_dst[e] = c
                if c == 1:
                    spans[e] += 1
        state.cut_weight, state.soed_weight = final
        return
    cut_w = state.cut_weight
    soed_w = state.soed_weight
    for v, original in reversed(tail_moves):
        src = part_of[v]
        area = areas[v]
        part_of[v] = original
        part_area[src] -= area
        part_area[original] += area
        counts_src = counts[src]
        counts_dst = counts[original]
        for e in incident_of[v]:
            w = net_weights[e]
            s = spans[e]
            c = counts_src[e] - 1
            counts_src[e] = c
            if c == 0:
                s -= 1
                soed_w -= w if s > 1 else (2 * w if s == 1 else 0)
                if s == 1:
                    cut_w -= w
            c = counts_dst[e] + 1
            counts_dst[e] = c
            if c == 1:
                s += 1
                soed_w += w if s > 2 else (2 * w if s == 2 else 0)
                if s == 2:
                    cut_w += w
            spans[e] = s
    state.cut_weight = cut_w
    state.soed_weight = soed_w


def _move_loop_reference(state: PartitionState, buckets, gains: List[int],
                         locked: List[bool], locked_counts,
                         config: FMConfig, areas, lower: float, upper: float
                         ) -> Tuple[List[Tuple[int, int]], int]:
    """The original accessor-walking pass loop, preserved verbatim."""
    hg = state.hg
    part_of = state.part_of
    counts = state.counts
    active = state.active
    rec = recorder()
    rec_on = rec.enabled
    cut_prev = state.cut_weight

    moves: List[Tuple[int, int]] = []
    best_cut = state.cut_weight
    best_index = 0
    stall = 0

    pending: set = set()
    if config.boundary:
        def bump(u, delta):
            if buckets.contains(u):
                gains[u] += delta
                buckets.update(u, gains[u])
            else:
                # Newly on the boundary.  Its full gain is computed
                # once, from the post-move counts, after both update
                # phases finish — applying per-net deltas here would
                # double-count nets the fresh computation already
                # sees.
                pending.add(u)
    else:
        def bump(u, delta):
            gains[u] += delta
            buckets.update(u, gains[u])

    while len(buckets):
        chosen = -1
        if locked_counts is None:
            for v in buckets.iter_desc():
                src = part_of[v]
                a = areas[v]
                if (state.part_area[src] - a >= lower
                        and state.part_area[1 - src] + a <= upper):
                    chosen = v
                    break
        else:
            # Lookahead: among the feasible members of the best
            # bucket (all tied on level-1 gain), pick the largest
            # level-2..r gain vector; first-seen (LIFO) wins ties.
            best_vec = None
            chosen_gain = 0
            for v in buckets.iter_desc():
                if chosen >= 0 and gains[v] != chosen_gain:
                    break
                src = part_of[v]
                a = areas[v]
                if not (state.part_area[src] - a >= lower
                        and state.part_area[1 - src] + a <= upper):
                    continue
                vec = _lookahead_vector(state, locked_counts, v,
                                        config.lookahead)
                if chosen < 0 or vec > best_vec:
                    chosen = v
                    best_vec = vec
                    chosen_gain = gains[v]
        if chosen < 0:
            break  # no feasible move remains
        buckets.remove(chosen)
        locked[chosen] = True
        src = part_of[chosen]
        dst = 1 - src

        # Gain updates, phase A: inspect pre-move counts.
        for e in hg.nets(chosen):
            if not active[e]:
                continue
            w = hg.net_weight(e)
            cd = counts[dst][e]
            if cd == 0:
                for u in hg.pins(e):
                    if not locked[u]:
                        bump(u, w)
            elif cd == 1:
                for u in hg.pins(e):
                    if not locked[u] and part_of[u] == dst:
                        bump(u, -w)
                        break

        state.move(chosen, dst)
        moves.append((chosen, src))
        if rec_on:
            cut_rec = state.cut_weight
            rec.emit({"t": "mv", "i": len(moves) - 1, "m": chosen,
                      "s": src, "g": cut_prev - cut_rec,
                      "bg": gains[chosen], "c": cut_rec,
                      "a0": state.part_area[0]})
            cut_prev = cut_rec
        if locked_counts is not None:
            bumped = locked_counts[dst]
            for e in hg.nets(chosen):
                if active[e]:
                    bumped[e] += 1

        # Gain updates, phase B: inspect post-move counts.
        for e in hg.nets(chosen):
            if not active[e]:
                continue
            w = hg.net_weight(e)
            cs = counts[src][e]
            if cs == 0:
                for u in hg.pins(e):
                    if not locked[u]:
                        bump(u, -w)
            elif cs == 1:
                for u in hg.pins(e):
                    if not locked[u] and part_of[u] == src:
                        bump(u, w)
                        break

        if pending:
            for u in pending:
                gains[u] = _module_gain_reference(state, u)
                buckets.insert(u, gains[u])
            pending.clear()

        if state.cut_weight < best_cut:
            best_cut = state.cut_weight
            best_index = len(moves)
            stall = 0
        else:
            stall += 1
            if (config.early_exit_stall is not None
                    and stall >= config.early_exit_stall):
                break

    return moves, best_index


def fm_bipartition(hg: Hypergraph,
                   initial: Optional[Partition] = None,
                   config: Optional[FMConfig] = None,
                   balance: Optional[BalanceConstraint] = None,
                   seed: SeedLike = None,
                   rng: Optional[random.Random] = None,
                   fixed: Optional[List[bool]] = None) -> FMResult:
    """Refine (or create) a bipartitioning of ``hg`` with FM.

    This is the ``FMPartition`` procedure of Figure 2: when ``initial``
    is ``None`` a random balanced starting solution is generated; an
    infeasible starting solution is first rebalanced by random moves.
    ``fixed`` marks modules that may never move (pre-assigned pads /
    propagated terminals, Section III-C); they keep their ``initial``
    side throughout.
    """
    config = config or FMConfig()
    rng = rng if rng is not None else make_rng(seed)
    # Observability: sampled once per call; per-pass event construction
    # is guarded so dormant instrumentation costs only these reads.
    tr = tracer()
    trace_on = tr.enabled
    mx = metrics()
    rec = recorder()
    rec_on = rec.enabled
    t_run = tr.begin() if trace_on else 0
    wall0 = time.perf_counter() if mx.enabled else 0.0
    if balance is None:
        balance = BalanceConstraint.from_tolerance(hg, config.tolerance, k=2)

    if initial is None:
        initial = random_partition(hg, k=2, rng=rng)
    elif initial.k != 2:
        raise PartitionError(
            f"fm_bipartition requires k=2, got k={initial.k}")
    if fixed is not None and len(fixed) != hg.num_modules:
        raise PartitionError(
            f"fixed has length {len(fixed)}, expected {hg.num_modules}")
    np_batch = (numpy_enabled() and config.lookahead == 1
                and hg.num_modules >= NP_ENGINE_MIN_MODULES)
    if not balance.is_feasible(initial.part_areas(hg)):
        repaired = (repair_balance(hg, initial, config, balance, fixed)
                    if np_batch else None)
        if repaired is not None:
            if rec_on:
                rec.emit({"t": "repair", "n": sum(
                    1 for a, b in zip(initial.assignment,
                                      repaired.assignment) if a != b)})
            initial = repaired
        else:
            movable = [not f for f in fixed] if fixed is not None else None
            initial = rebalance_random(hg, initial, balance, rng=rng,
                                       movable=movable)

    if np_batch:
        # Batched vectorized pass loop (see npengine): no buckets, no
        # PartitionState — the whole pass runs on ndarray snapshots.
        # Small netlists and lookahead configurations stay on the
        # sequential CSR pass below.
        initial_cut = cut(hg, initial)
        if rec_on:
            rec.emit({"t": "fm", "l": rec.level, "n": hg.num_modules,
                      "mns": config.max_net_size, "np": 1,
                      "clip": int(config.clip),
                      "init": "".join(map(str, initial.assignment))})
        assignment, internal_cut, passes, total_moves, pass_cuts = \
            batch_refine(hg, initial, config, balance, fixed, tr)
        final = Partition(assignment, 2)
        final_cut = cut(hg, final)
        if trace_on:
            tr.end("fm.run", t_run, {
                "modules": hg.num_modules, "mode": kernel_mode(),
                "clip": config.clip, "passes": passes,
                "moves": total_moves, "initial_cut": initial_cut,
                "cut": final_cut,
            })
        if mx.enabled:
            mode = kernel_mode()
            mx.counter("repro_fm_runs_total",
                       "FM engine invocations", mode=mode).inc()
            mx.counter("repro_fm_passes_total",
                       "FM passes executed", mode=mode).inc(passes)
            mx.counter("repro_fm_moves_total",
                       "FM moves attempted", mode=mode).inc(total_moves)
            mx.histogram("repro_fm_run_seconds",
                         "Wall time of one FM invocation",
                         mode=mode).observe(time.perf_counter() - wall0)
        return FMResult(partition=final,
                        cut=final_cut,
                        internal_cut=internal_cut,
                        initial_cut=initial_cut,
                        passes=passes,
                        total_moves=total_moves,
                        pass_cuts=pass_cuts)

    use_csr = csr_enabled()
    active_list = _active_nets(hg, config.max_net_size)
    state = PartitionState(hg, initial, active_nets=active_list)
    if rec_on:
        rec.emit({"t": "fm", "l": rec.level, "n": hg.num_modules,
                  "mns": config.max_net_size, "np": 0,
                  "clip": int(config.clip), "c": state.cut_weight,
                  "init": "".join(map(str, initial.assignment))})
    if use_csr:
        max_gain = hg.csr.max_weighted_degree(config.max_net_size)
    else:
        max_gain = _max_weighted_degree(hg, state.active)
    bucket_range = 2 * max_gain if config.clip else max_gain

    initial_cut = cut(hg, initial)
    best_overall = state.cut_weight
    passes = 0
    total_moves = 0
    pass_cuts: List[int] = []
    max_passes = config.max_passes or 1000

    areas = hg.csr.areas_list if use_csr else hg.areas()
    part_of = state.part_of
    active = state.active
    lower, upper = balance.lower, balance.upper
    move_loop = _move_loop_csr if use_csr else _move_loop_reference

    def is_movable(v: int) -> bool:
        return fixed is None or not fixed[v]

    while passes < max_passes:
        passes += 1
        t_pass = tr.now() if trace_on else 0
        buckets = make_buckets(hg.num_modules, bucket_range,
                               config.bucket_policy, rng)

        if config.clip:
            # CLIP: concatenate all buckets into the zero bucket, best
            # initial gain first, then track only gain *changes*.  With
            # LIFO insertion (at head) ascending order leaves the best
            # gain at the head; with FIFO (at tail) descending does.
            gains = _initial_gains(state)
            if use_csr:
                candidates = range(hg.num_modules) if fixed is None \
                    else [v for v in range(hg.num_modules) if not fixed[v]]
                order = sorted(candidates, key=gains.__getitem__)
                if config.bucket_policy == "fifo":
                    order.reverse()
                if type(buckets) is LinkedListBuckets:
                    buckets.fill_uniform(order, 0)
                else:
                    for v in order:
                        buckets.insert(v, 0)
            else:
                order = sorted((v for v in hg.modules() if is_movable(v)),
                               key=lambda v: gains[v])
                if config.bucket_policy == "fifo":
                    order.reverse()
                for v in order:
                    buckets.insert(v, 0)
            gains = [0] * hg.num_modules
        elif config.boundary:
            # Boundary refinement (Section V / Chaco [22]): only
            # cut-incident modules enter the structure; the rest are
            # inserted on demand when a move pulls them onto the
            # boundary.
            gains = [0] * hg.num_modules
            for v in _boundary_modules(state):
                if is_movable(v):
                    gains[v] = _module_gain(state, v)
                    buckets.insert(v, gains[v])
        else:
            gains = _initial_gains(state)
            if use_csr and type(buckets) is LinkedListBuckets:
                candidates = range(hg.num_modules) if fixed is None \
                    else [v for v in range(hg.num_modules) if not fixed[v]]
                buckets.fill(candidates, gains)
            else:
                for v in hg.modules():
                    if is_movable(v):
                        buckets.insert(v, gains[v])

        locked = [bool(f) for f in fixed] if fixed is not None \
            else [False] * hg.num_modules
        locked_counts = ([[0] * hg.num_nets, [0] * hg.num_nets]
                         if config.lookahead > 1 else None)
        if locked_counts is not None and fixed is not None:
            # Pre-assigned modules behave as locked pins for the
            # lookahead binding numbers from the very start.
            for v in hg.modules():
                if fixed[v]:
                    side = part_of[v]
                    for e in hg.nets(v):
                        if active[e]:
                            locked_counts[side][e] += 1

        if trace_on:
            bucket_inserts = len(buckets)
            cut_before = state.cut_weight

        moves, best_index = move_loop(state, buckets, gains, locked,
                                      locked_counts, config, areas,
                                      lower, upper)
        total_moves += len(moves)

        # Roll back to the best prefix of the pass.
        if use_csr:
            _rollback_csr(state, moves, best_index,
                          hg.csr.active_incidence(config.max_net_size))
        else:
            for v, original in reversed(moves[best_index:]):
                state.move(v, original)
        pass_cuts.append(state.cut_weight)
        if rec_on:
            rec.emit({"t": "pass", "p": passes, "k": best_index,
                      "mv": len(moves), "c": state.cut_weight})

        if trace_on:
            # Every counter here is a pure function of the (identical)
            # move sequence, so the per-pass telemetry is bit-equal
            # between the reference and CSR kernel families.
            tr.complete("fm.pass", t_pass, {
                "pass": passes,
                "moves_attempted": len(moves),
                "moves_committed": best_index,
                "rollback_depth": len(moves) - best_index,
                "bucket_inserts": bucket_inserts,
                "bucket_ops": bucket_inserts + len(moves),
                "cut_before": cut_before,
                "cut_after": state.cut_weight,
                "gain": cut_before - state.cut_weight,
            })

        if state.cut_weight >= best_overall:
            break
        best_overall = state.cut_weight

    final = state.to_partition()
    final_cut = cut(hg, final)
    if trace_on:
        tr.end("fm.run", t_run, {
            "modules": hg.num_modules, "mode": kernel_mode(),
            "clip": config.clip, "passes": passes,
            "moves": total_moves, "initial_cut": initial_cut,
            "cut": final_cut,
        })
    if mx.enabled:
        mode = kernel_mode()
        mx.counter("repro_fm_runs_total",
                   "FM engine invocations", mode=mode).inc()
        mx.counter("repro_fm_passes_total",
                   "FM passes executed", mode=mode).inc(passes)
        mx.counter("repro_fm_moves_total",
                   "FM moves attempted", mode=mode).inc(total_moves)
        mx.histogram("repro_fm_run_seconds",
                     "Wall time of one FM invocation",
                     mode=mode).observe(time.perf_counter() - wall0)
    return FMResult(partition=final,
                    cut=final_cut,
                    internal_cut=state.cut_weight,
                    initial_cut=initial_cut,
                    passes=passes,
                    total_moves=total_moves,
                    pass_cuts=pass_cuts)
