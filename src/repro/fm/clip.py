"""CLIP — Cluster-oriented Iterative-improvement Partitioner [14].

CLIP is FM with one preprocessing step per pass: after initial gains
are computed, every bucket is concatenated (best gain first) into the
zero bucket and the bucket index range doubles, so from then on a
module's bucket position equals its accumulated gain *change* since the
pass began.  The effect is that adjacency to recently-moved modules
dominates selection — clusters get dragged across the cut line together
(Section II-B; Table III shows ~18% average-cut improvement over FM).

The mechanism itself lives inside :func:`repro.fm.fm_bipartition`
(``FMConfig(clip=True)``); this module provides the named entry point
used throughout the benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional

from ..hypergraph import Hypergraph
from ..partition import BalanceConstraint, Partition
from ..rng import SeedLike
from .config import FMConfig
from .engine import FMResult, fm_bipartition

__all__ = ["clip_bipartition", "clip_config"]


def clip_config(base: Optional[FMConfig] = None) -> FMConfig:
    """A copy of ``base`` (default :class:`FMConfig`) with CLIP enabled."""
    return replace(base or FMConfig(), clip=True)


def clip_bipartition(hg: Hypergraph,
                     initial: Optional[Partition] = None,
                     config: Optional[FMConfig] = None,
                     balance: Optional[BalanceConstraint] = None,
                     seed: SeedLike = None,
                     rng: Optional[random.Random] = None) -> FMResult:
    """Run the CLIP algorithm (FM with CLIP bucket preprocessing)."""
    return fm_bipartition(hg, initial=initial, config=clip_config(config),
                          balance=balance, seed=seed, rng=rng)
