"""Batched (vectorized) FM-style refinement for the ``numpy`` kernels.

The sequential FM pass is inherently serial — each move's gain update
feeds the next selection — so it cannot be vectorized move by move
without losing exactly the property that makes it fast.  The ``numpy``
kernel mode therefore swaps the *pass interior* for a batched
gain-descent in the style of label-propagation / Jet-like refiners
used by parallel multilevel partitioners (Mt-KaHyPar's LP refinement,
arXiv:1511.03137 lineage): each *round* computes the full gain vector
with one :meth:`~repro.hypergraph.npview.NumpyIncidence.initial_gains2`
sweep, takes the positive-gain candidates sorted by ``(-gain, id)``,
trims each direction's prefix to the balance window with a cumulative
area ``searchsorted``, applies the whole batch with one scatter-add
over incident nets, and keeps it iff the recomputed internal cut
improved — otherwise the larger side's prefix is halved and retried
(a single positive-gain move always improves, so a round either
commits or proves no feasible positive candidate remains).  Moved
modules lock for the rest of the pass, passes repeat until one fails
to improve, exactly the outer FM discipline.

Divergences from the sequential engines (documented in DESIGN.md §13;
``numpy`` mode pins its own golden cuts):

* moves commit in batches without intra-batch gain updates, so the
  move sequence — and hence tie-breaking — differs from bucket FM;
* only improving batches commit: there is no within-pass hill climb
  with rollback-to-best-prefix (rollback depth is always zero);
* CLIP preprocessing, bucket disciplines (LIFO/FIFO/random), boundary
  mode, and ``early_exit_stall`` are bucket-structure concepts with no
  batched analogue — the batched pass treats those configurations
  identically (their RNG draws are simply not made; per-mode
  determinism is unaffected);
* balance trimming drops the *lowest-gain suffix* of an infeasible
  direction, where sequential FM would skip an oversized module and
  still take smaller lower-gain ones.

Everything else — the active-net threshold, balance window, ``fixed``
modules, ``max_passes``, pass/cut accounting — matches the sequential
engines.  Netlists below :data:`NP_ENGINE_MIN_MODULES` (and any
``lookahead > 1`` configuration) keep the sequential CSR pass, whose
arithmetic ``numpy`` mode shares bit for bit: at the coarsest levels
quality hinges on the exact hill-climbing pass and the arrays are too
small to amortise dispatch.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..hypergraph import Hypergraph
from ..obs import recorder
from ..partition import BalanceConstraint, Partition
from .config import FMConfig

__all__ = ["NP_ENGINE_MIN_MODULES", "batch_refine", "repair_balance"]

# Below this module count the sequential CSR pass wins on both time
# (fixed ndarray-dispatch overhead per round) and quality (exact
# hill-climbing matters most on coarse netlists).
NP_ENGINE_MIN_MODULES = 128


def repair_balance(hg: Hypergraph, initial: Partition, config: FMConfig,
                   balance: BalanceConstraint,
                   fixed: Optional[List[bool]]) -> Optional[Partition]:
    """Cut-aware rebalancing of an infeasible projected bipartition.

    The paper rebalances by *random* moves from the heavy side — cheap,
    but it can shred a good projected solution, and the batched engine
    recovers less of that damage than sequential FM does.  The numpy
    mode instead moves a prefix of the heavy side's modules in
    stale-gain order (highest gain first — those moves cost the least
    cut, often improving it).  The balance window is at least two
    maximum module areas wide (``A(V)/2 ± max(A(v*), r·A(V))``), so no
    single move can step over it and the first prefix that clears the
    violated bound is feasible; that prefix is found with one
    ``cumsum`` + ``searchsorted``.  Returns ``None`` when no movable
    prefix reaches feasibility (caller falls back to random moves).
    """
    view = hg.csr.np
    areas = view.areas
    part = np.asarray(initial.assignment, dtype=np.int8)
    total = float(areas.sum())
    area0 = float(areas[part == 0].sum())
    lo = max(balance.lower, total - balance.upper)
    hi = min(balance.upper, total - balance.lower)
    if lo <= area0 <= hi:
        return initial
    heavy0 = area0 > hi
    movable = (part == 0) if heavy0 else (part == 1)
    if fixed is not None:
        movable &= ~np.asarray(fixed, dtype=bool)
    cand = np.flatnonzero(movable)
    if cand.size == 0:
        return None
    c0, c1 = view.counts2(part)
    gains = view.initial_gains2(
        part, c0, c1, view.pin_weights(config.max_net_size))
    cand = cand[np.lexsort((cand, -gains[cand]))]
    moved = np.cumsum(areas[cand])
    # Area that must leave the heavy side to clear its violated bound.
    need = (area0 - hi) if heavy0 else (lo - area0) if area0 < lo else 0.0
    k = int(np.searchsorted(moved, need, side="left")) + 1
    if k > cand.size:
        return None
    new_area0 = area0 - moved[k - 1] if heavy0 else area0 + moved[k - 1]
    if not lo <= new_area0 <= hi:
        return None
    assignment = part.copy()
    assignment[cand[:k]] ^= 1
    return Partition(assignment.tolist(), 2)


def _polish_walk(view, threshold, part: np.ndarray,
                 c0: np.ndarray, c1: np.ndarray, cut_internal: int,
                 area0: float, lo: float, hi: float,
                 locked: np.ndarray, gains: np.ndarray):
    """One sequential exact-gain walk over the boundary (per pass).

    Batched rounds stop at the first round whose summed stale gains
    evaporate under interaction; a sequential sweep in the style of
    Jet's afterburner (arXiv:2304.13194) recovers most of the gap to
    true FM: visit unlocked boundary modules in stale-gain order
    (``(-gain, id)``), recompute each candidate's gain *exactly* from
    the live counts, apply every feasible move — negative gains
    included, which is the hill-climb that lets the walk cross the
    valleys batched rounds cannot — and roll back to the best prefix
    at the end, exactly FM's pass discipline.  The walk runs over
    plain Python lists (converted once per pass, incidence lists cached
    on the view), so each visit is a handful of list indexings — the
    conversion, not the walk, is the overhead that bounds it.

    Returns ``(part, c0, c1, cut, area0, locked, moved)`` with the
    arrays rebuilt from the walked state; ``moved`` lists the modules
    of the kept prefix (callers patch gains for their net pins).
    """
    w_eff = view.effective_weights(threshold)
    cut_net = (c0 > 0) & (c1 > 0) & (w_eff > 0)
    boundary = np.zeros(view.num_modules, dtype=bool)
    boundary[view.pins_flat[cut_net[view.net_ids]]] = True
    cand = np.flatnonzero(boundary & ~locked)
    if cand.size == 0:
        return part, c0, c1, cut_internal, area0, locked, ()
    cand = cand[np.lexsort((cand, -gains[cand]))]

    xnets_l = view.xnets_list
    nets_l = view.nets_flat_list
    w_l = view.eff_weights_list(threshold)
    areas_l = view.areas.tolist()
    part_l = part.tolist()
    c0_l = c0.tolist()
    c1_l = c1.tolist()
    locked_l = locked.tolist()

    cur = cut_internal
    best = cut_internal
    best_len = 0
    best_a0 = area0
    a0 = area0
    centre = (lo + hi) / 2.0
    applied = []
    # Hill-climb stall cutoff: once this many moves pass without a new
    # best cut the tail is (empirically) dead weight — FM's
    # early-exit discipline, sized to the boundary so coarse levels
    # still explore deeply.
    stall_limit = 128 + len(cand) // 8
    for v in cand.tolist():
        if len(applied) - best_len > stall_limit:
            break
        side = part_l[v]
        av = areas_l[v]
        na0 = a0 - av if side == 0 else a0 + av
        if not lo <= na0 <= hi:
            continue
        g = 0
        start, stop = xnets_l[v], xnets_l[v + 1]
        if side == 0:
            for i in range(start, stop):
                e = nets_l[i]
                if c0_l[e] == 1:
                    g += w_l[e]
                elif c1_l[e] == 0:
                    g -= w_l[e]
        else:
            for i in range(start, stop):
                e = nets_l[i]
                if c1_l[e] == 1:
                    g += w_l[e]
                elif c0_l[e] == 0:
                    g -= w_l[e]
        # Plateau moves may explore, but not by drifting the balance
        # toward the window edge: finer levels have *tighter* windows
        # (the ±max(A(v*), r·A(V)) slack shrinks as modules split), and
        # a projected partition hugging this level's edge would get
        # destroyed by random rebalancing below.
        if g == 0 and abs(na0 - centre) > abs(a0 - centre):
            continue
        if side == 0:
            for i in range(start, stop):
                e = nets_l[i]
                c0_l[e] -= 1
                c1_l[e] += 1
        else:
            for i in range(start, stop):
                e = nets_l[i]
                c1_l[e] -= 1
                c0_l[e] += 1
        part_l[v] = 1 - side
        locked_l[v] = True
        a0 = na0
        cur -= g
        applied.append(v)
        if cur < best:
            best = cur
            best_len = len(applied)
            best_a0 = a0
    if not applied:
        return part, c0, c1, cut_internal, area0, locked, ()
    for v in reversed(applied[best_len:]):
        side = part_l[v]
        if side == 1:
            for i in range(xnets_l[v], xnets_l[v + 1]):
                e = nets_l[i]
                c1_l[e] -= 1
                c0_l[e] += 1
        else:
            for i in range(xnets_l[v], xnets_l[v + 1]):
                e = nets_l[i]
                c0_l[e] -= 1
                c1_l[e] += 1
        part_l[v] = 1 - side
        locked_l[v] = False
    return (np.asarray(part_l, dtype=np.int8),
            np.asarray(c0_l, dtype=np.int64),
            np.asarray(c1_l, dtype=np.int64),
            best, best_a0,
            np.asarray(locked_l, dtype=bool),
            applied[:best_len])


def _trim_balance(to1_csum: np.ndarray, to0_csum: np.ndarray,
                  k1: int, k0: int, area0: float,
                  lo: float, hi: float) -> Tuple[int, int]:
    """Largest balance-feasible prefix pair ``(k1, k0)``.

    ``to1_csum[i]`` is the area leaving side 0 when the first ``i``
    candidates of that direction move (``to0_csum`` symmetric); the
    post-batch side-0 area is ``area0 - to1_csum[k1] + to0_csum[k0]``
    and must land in ``[lo, hi]``.  Each violated bound shrinks the
    offending direction via ``searchsorted`` on its monotone cumsum;
    every step strictly decreases ``k1 + k0``, and ``(0, 0)`` restores
    the (feasible) current areas, so the loop terminates.
    """
    while True:
        a0 = area0 - to1_csum[k1] + to0_csum[k0]
        if a0 < lo and k1 > 0:
            want = np.searchsorted(
                to1_csum, area0 + to0_csum[k0] - lo, side="right") - 1
            k1 = min(int(want), k1 - 1)
            k1 = 0 if k1 < 0 else k1
        elif a0 > hi and k0 > 0:
            want = np.searchsorted(
                to0_csum, hi - area0 + to1_csum[k1], side="right") - 1
            k0 = min(int(want), k0 - 1)
            k0 = 0 if k0 < 0 else k0
        else:
            return k1, k0


def batch_refine(hg: Hypergraph, initial: Partition, config: FMConfig,
                 balance: BalanceConstraint,
                 fixed: Optional[List[bool]], tr,
                 ) -> Tuple[List[int], int, int, int, List[int]]:
    """Run the batched pass loop; returns
    ``(assignment, internal_cut, passes, total_moves, pass_cuts)``.

    ``initial`` must already be balance-feasible (the caller
    rebalances, exactly as for the sequential engines).
    """
    trace_on = tr.enabled
    rec = recorder()
    rec_on = rec.enabled
    view = hg.csr.np
    threshold = config.max_net_size
    w_eff = view.effective_weights(threshold)
    w_pin = view.pin_weights(threshold)
    sizes = view.net_sizes
    areas = view.areas

    part = np.asarray(initial.assignment, dtype=np.int8)
    c0, c1 = view.counts2(part)
    cut_internal = int(w_eff[(c0 > 0) & (c1 > 0)].sum())

    total_area = float(areas.sum())
    area0 = float(areas[part == 0].sum())
    # Side 0 must respect its own bounds and leave side 1 inside its
    # (identical) bounds: one window on area0 captures both.
    lo = max(balance.lower, total_area - balance.upper)
    hi = min(balance.upper, total_area - balance.lower)

    if fixed is not None:
        locked_base = np.asarray(fixed, dtype=bool)
    else:
        locked_base = np.zeros(view.num_modules, dtype=bool)

    passes = 0
    total_moves = 0
    pass_cuts: List[int] = []
    max_passes = config.max_passes or 1000
    best_overall = cut_internal

    # One full gain sweep; every later mutation (batch commits, walk
    # moves) patches only the pins its nets touch, so the vector stays
    # exact across rounds *and* passes.
    gains = view.initial_gains2(part, c0, c1, w_pin)
    while passes < max_passes:
        passes += 1
        t_pass = tr.now() if trace_on else 0
        start_cut = cut_internal
        committed = 0
        rounds = 0
        locked = locked_base.copy()

        while True:
            rounds += 1
            cand = np.flatnonzero((gains > 0) & ~locked)
            if cand.size == 0:
                break
            cand = cand[np.lexsort((cand, -gains[cand]))]
            going1 = part[cand] == 0
            to1 = cand[going1]
            to0 = cand[~going1]
            to1_csum = np.concatenate(
                ([0.0], np.cumsum(areas[to1])))
            to0_csum = np.concatenate(
                ([0.0], np.cumsum(areas[to0])))

            k1, k0 = to1.size, to0.size
            improved = False
            while k1 + k0 > 0:
                k1, k0 = _trim_balance(to1_csum, to0_csum, k1, k0,
                                       area0, lo, hi)
                if k1 + k0 == 0:
                    break
                batch = np.concatenate((to1[:k1], to0[:k0]))
                nets, lens = view.incident_nets(batch.astype(np.int64))
                delta = np.where(part[batch] == 0, 1, -1)
                c1_new = c1.copy()
                np.add.at(c1_new, nets, np.repeat(delta, lens))
                c0_new = sizes - c1_new
                new_cut = int(
                    w_eff[(c0_new > 0) & (c1_new > 0)].sum())
                if new_cut < cut_internal:
                    part[batch] ^= 1
                    locked[batch] = True
                    c0, c1 = c0_new, c1_new
                    cut_internal = new_cut
                    area0 = area0 - to1_csum[k1] + to0_csum[k0]
                    committed += int(batch.size)
                    improved = True
                    if rec_on:
                        rec.emit({"t": "batch", "r": rounds,
                                  "mods": batch.tolist(),
                                  "c": cut_internal, "a0": float(area0)})
                    break
                # The batch's interactions ate its summed gain: drop
                # the lower-gain half of the larger direction.  A lone
                # survivor always improves (its gain is exact), so the
                # halving bottoms out in a commit or an empty batch.
                if k1 >= k0:
                    k1 //= 2
                else:
                    k0 //= 2
            if not improved:
                break
            # Refresh only the gains a commit could have changed: the
            # pins of the nets the batch touched.  Early rounds touch
            # most of the netlist (full sweep is cheaper); later rounds
            # shrink to the boundary.
            touched = np.unique(nets)
            aff = np.unique(view.net_pins_of(touched)[0])
            if aff.size * 3 > view.num_modules:
                gains = view.initial_gains2(part, c0, c1, w_pin)
            else:
                gains = gains.copy()
                gains[aff] = view.gains_for(
                    aff.astype(np.int64), part, c0, c1, w_eff)

        # Sequential exact-gain polish over the boundary (see
        # _polish_walk), run only when the batched rounds are stuck:
        # that is precisely when the remaining gains are negative or
        # interaction-cancelled and only a hill-climb can progress.
        # While batches still commit, the walk would re-derive what the
        # next round finds anyway — at list-conversion prices.
        if committed == 0:
            part, c0, c1, cut_internal, area0, locked, moved = \
                _polish_walk(view, threshold, part, c0, c1, cut_internal,
                             area0, lo, hi, locked, gains)
            if moved:
                committed += len(moved)
                if rec_on:
                    rec.emit({"t": "polish", "mods": list(moved),
                              "c": cut_internal, "a0": float(area0)})
                mv = np.asarray(moved, dtype=np.int64)
                aff = np.unique(
                    view.net_pins_of(np.unique(view.incident_nets(mv)[0]))[0])
                if aff.size * 3 > view.num_modules:
                    gains = view.initial_gains2(part, c0, c1, w_pin)
                else:
                    gains = gains.copy()
                    gains[aff] = view.gains_for(
                        aff.astype(np.int64), part, c0, c1, w_eff)

        pass_cuts.append(cut_internal)
        total_moves += committed
        if rec_on:
            rec.emit({"t": "pass", "p": passes, "k": committed,
                      "mv": committed, "c": cut_internal, "np": 1})
        if trace_on:
            tr.complete("fm.pass", t_pass, {
                "pass": passes,
                "moves_attempted": committed,
                "moves_committed": committed,
                "rollback_depth": 0,
                "bucket_inserts": 0,
                "bucket_ops": rounds,
                "cut_before": start_cut,
                "cut_after": cut_internal,
                "gain": start_cut - cut_internal,
            })
        if cut_internal >= best_overall:
            break
        best_overall = cut_internal

    return (part.tolist(), cut_internal, passes, total_moves, pass_cuts)
