"""Large-Step Markov Chain partitioning (Fukunaga, Huang, Kahng [16]).

LSMC alternates FM descents with large "kick" perturbations: starting
from the best local minimum found so far, a kick moves a random block
of modules across the cut, and FM descends again from the kicked
solution.  The paper reimplemented LSMC and reports results "for 100
descents, with the kick move performed on the best partitioning
solution observed so far (temperature = 0)" — i.e. pure descent, no
uphill acceptance — both as a bipartitioning comparator (Table VII) and
in FM/CLIP 4-way flavours for Table IX.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigError
from ..hypergraph import Hypergraph
from ..partition import (BalanceConstraint, Partition, cut, soed,
                         random_partition)
from ..partition.rebalance import rebalance_random
from ..rng import SeedLike, make_rng
from ..fm.config import FMConfig
from ..fm.engine import fm_bipartition
from ..fm.kway import kway_partition

__all__ = ["LSMCResult", "lsmc_bipartition", "lsmc_kway", "kick"]

#: Fraction of modules relocated by one kick.  Kicks must be "big jumps"
#: (large enough to escape the current basin) yet leave most of the
#: solution intact; relocating ~10% of modules is the conventional LSMC
#: setting for graph bisection.
DEFAULT_KICK_FRACTION = 0.10


@dataclass
class LSMCResult:
    """Outcome of one LSMC run (``descents`` local minima explored)."""

    partition: Partition
    cut: int
    soed: int
    descents: int
    descent_cuts: List[int] = field(default_factory=list)


def kick(hg: Hypergraph, partition: Partition,
         rng: random.Random,
         fraction: float = DEFAULT_KICK_FRACTION) -> Partition:
    """One large-step perturbation: relocate a random block of modules.

    Each selected module moves to a uniformly random *other* part; the
    result is not rebalanced here (the descent engine rebalances).
    """
    if not 0 < fraction <= 1:
        raise ConfigError(f"kick fraction must be in (0, 1], got {fraction}")
    n = partition.num_modules
    count = max(1, int(round(fraction * n)))
    assignment = list(partition.assignment)
    k = partition.k
    for v in rng.sample(range(n), count):
        others = [p for p in range(k) if p != assignment[v]]
        assignment[v] = rng.choice(others)
    return Partition(assignment, k)


def lsmc_bipartition(hg: Hypergraph,
                     descents: int = 100,
                     config: Optional[FMConfig] = None,
                     kick_fraction: float = DEFAULT_KICK_FRACTION,
                     seed: SeedLike = None,
                     rng: Optional[random.Random] = None) -> LSMCResult:
    """LSMC bipartitioning with an FM (or CLIP, via ``config``) engine."""
    if descents < 1:
        raise ConfigError(f"descents must be >= 1, got {descents}")
    config = config or FMConfig()
    rng = rng if rng is not None else make_rng(seed)

    best = fm_bipartition(hg, initial=None, config=config, rng=rng)
    best_partition, best_cut = best.partition, best.cut
    descent_cuts = [best_cut]
    for _ in range(descents - 1):
        start = kick(hg, best_partition, rng, kick_fraction)
        result = fm_bipartition(hg, initial=start, config=config, rng=rng)
        descent_cuts.append(result.cut)
        if result.cut < best_cut:
            best_cut = result.cut
            best_partition = result.partition
    return LSMCResult(partition=best_partition, cut=best_cut,
                      soed=2 * best_cut, descents=descents,
                      descent_cuts=descent_cuts)


def lsmc_kway(hg: Hypergraph,
              k: int = 4,
              descents: int = 20,
              config: Optional[FMConfig] = None,
              objective: str = "soed",
              kick_fraction: float = DEFAULT_KICK_FRACTION,
              seed: SeedLike = None,
              rng: Optional[random.Random] = None) -> LSMCResult:
    """k-way LSMC (the LSMC_F / LSMC_C rows of Table IX)."""
    if descents < 1:
        raise ConfigError(f"descents must be >= 1, got {descents}")
    config = config or FMConfig()
    rng = rng if rng is not None else make_rng(seed)
    balance = BalanceConstraint.from_tolerance(hg, config.tolerance, k=k)

    best = kway_partition(hg, k=k, initial=None, config=config,
                          objective=objective, balance=balance, rng=rng)
    best_partition, best_cut = best.partition, best.cut
    descent_cuts = [best_cut]
    for _ in range(descents - 1):
        start = kick(hg, best_partition, rng, kick_fraction)
        start = rebalance_random(hg, start, balance, rng=rng)
        result = kway_partition(hg, k=k, initial=start, config=config,
                                objective=objective, balance=balance,
                                rng=rng)
        descent_cuts.append(result.cut)
        if result.cut < best_cut:
            best_cut = result.cut
            best_partition = result.partition
    return LSMCResult(partition=best_partition, cut=best_cut,
                      soed=soed(hg, best_partition), descents=descents,
                      descent_cuts=descent_cuts)
