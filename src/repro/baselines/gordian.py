"""GORDIAN-style quadratic-placement quadrisection (simulator).

Table IX compares ML quadrisection against the initial 4-way
partitioning produced by the GORDIAN placement tool [30]: I/O pads are
preplaced, a quadratic-wirelength system is solved for the unfixed
module locations, the induced horizontal ordering is split into a
bipartitioning, and a second (vertical) optimisation splits each half
again — yielding the 4-way partitioning GORDIAN preserves in its final
placement (Section IV-D and footnote 3).

GORDIAN itself is proprietary and the paper's placements came via
personal communication, so this module reimplements the *mechanism*:

* nets become cliques with weight ``w / (|e| - 1)``,
* pads (a configurable subset of modules) are anchored evenly around
  the unit square's perimeter,
* the free-module coordinates minimise quadratic wirelength, i.e.
  solve ``L_ff x_f = -L_fp x_p`` (sparse SPD solve),
* orderings are split at the even-area point.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..partition import Partition, cut
from ..rng import SeedLike, make_rng
from .spectral import clique_laplacian

__all__ = ["GordianResult", "perimeter_positions", "quadratic_placement",
           "gordian_bipartition", "gordian_quadrisection"]

#: Tiny diagonal regularisation keeping ``L_ff`` nonsingular when some
#: free modules are disconnected from every pad.
_REGULARISATION = 1e-9


@dataclass
class GordianResult:
    """A placement-derived partitioning and the coordinates behind it."""

    partition: Partition
    cut: int
    x: np.ndarray
    y: np.ndarray
    pads: List[int]


def perimeter_positions(count: int) -> List[Tuple[float, float]]:
    """``count`` points spread evenly around the unit square's border."""
    if count < 1:
        raise PartitionError("need at least one pad position")
    positions = []
    for i in range(count):
        t = 4.0 * i / count
        side, offset = int(t), t - int(t)
        if side == 0:
            positions.append((offset, 0.0))
        elif side == 1:
            positions.append((1.0, offset))
        elif side == 2:
            positions.append((1.0 - offset, 1.0))
        else:
            positions.append((0.0, 1.0 - offset))
    return positions


def quadratic_placement(hg: Hypergraph, pads: Sequence[int],
                        pad_xy: Sequence[Tuple[float, float]]
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the quadratic placement for both axes.

    Returns ``(x, y)`` coordinate vectors over all modules; pad
    coordinates are fixed to ``pad_xy``.
    """
    if len(pads) != len(pad_xy):
        raise PartitionError(
            f"{len(pads)} pads but {len(pad_xy)} positions")
    if len(set(pads)) != len(pads):
        raise PartitionError("duplicate pad indices")
    n = hg.num_modules
    laplacian = clique_laplacian(hg).tocsc()

    is_pad = np.zeros(n, dtype=bool)
    is_pad[list(pads)] = True
    free = np.where(~is_pad)[0]
    fixed = np.asarray(list(pads), dtype=int)

    x = np.zeros(n)
    y = np.zeros(n)
    pad_arr = np.asarray(pad_xy, dtype=float)
    x[fixed] = pad_arr[:, 0]
    y[fixed] = pad_arr[:, 1]

    if len(free) == 0:
        return x, y

    l_ff = laplacian[np.ix_(free, free)].tocsc()
    l_ff = l_ff + sp.identity(len(free), format="csc") * _REGULARISATION
    l_fp = laplacian[np.ix_(free, fixed)]
    solve = spla.factorized(l_ff)
    x[free] = solve(-l_fp @ x[fixed])
    y[free] = solve(-l_fp @ y[fixed])
    return x, y


def _split_even_area(hg: Hypergraph, modules: Sequence[int],
                     keys: np.ndarray) -> Tuple[List[int], List[int]]:
    """Split ``modules`` by ascending ``keys`` at the even-area point.

    This is GORDIAN's "single split that evenly divides the area into a
    left and right half" (footnote 3).
    """
    order = sorted(modules, key=lambda v: (keys[v], v))
    total = sum(hg.area(v) for v in order)
    half = total / 2
    left: List[int] = []
    accumulated = 0.0
    for idx, v in enumerate(order):
        if accumulated >= half and left:
            return left, list(order[idx:])
        left.append(v)
        accumulated += hg.area(v)
    # Degenerate: everything landed left (e.g. single module).
    return left[:-1], left[-1:]


def _default_pads(hg: Hypergraph, rng: random.Random) -> List[int]:
    """A plausible synthetic I/O pad set: ~4*sqrt(n) random modules."""
    count = max(4, min(hg.num_modules // 2,
                       int(4 * math.sqrt(hg.num_modules))))
    return sorted(rng.sample(range(hg.num_modules), count))


def gordian_bipartition(hg: Hypergraph,
                        pads: Optional[Sequence[int]] = None,
                        seed: SeedLike = None,
                        rng: Optional[random.Random] = None
                        ) -> GordianResult:
    """Horizontal-ordering split into two clusters."""
    rng = rng if rng is not None else make_rng(seed)
    pads = list(pads) if pads is not None else _default_pads(hg, rng)
    x, y = quadratic_placement(hg, pads, perimeter_positions(len(pads)))
    left, right = _split_even_area(hg, list(hg.modules()), x)
    assignment = [0] * hg.num_modules
    for v in right:
        assignment[v] = 1
    partition = Partition(assignment, 2)
    return GordianResult(partition=partition, cut=cut(hg, partition),
                         x=x, y=y, pads=list(pads))


def gordian_quadrisection(hg: Hypergraph,
                          pads: Optional[Sequence[int]] = None,
                          seed: SeedLike = None,
                          rng: Optional[random.Random] = None
                          ) -> GordianResult:
    """The Table IX comparator: horizontal split, then vertical splits.

    Parts are numbered by quadrant: 0 = left-bottom, 1 = left-top,
    2 = right-bottom, 3 = right-top.
    """
    if hg.num_modules < 4:
        raise PartitionError("cannot quadrisect fewer than four modules")
    rng = rng if rng is not None else make_rng(seed)
    pads = list(pads) if pads is not None else _default_pads(hg, rng)
    x, y = quadratic_placement(hg, pads, perimeter_positions(len(pads)))

    left, right = _split_even_area(hg, list(hg.modules()), x)
    assignment = [0] * hg.num_modules
    for half, base in ((left, 0), (right, 2)):
        bottom, top = _split_even_area(hg, half, y)
        for v in bottom:
            assignment[v] = base
        for v in top:
            assignment[v] = base + 1
    partition = Partition(assignment, 4)
    return GordianResult(partition=partition, cut=cut(hg, partition),
                         x=x, y=y, pads=list(pads))
