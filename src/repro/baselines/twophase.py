"""Two-phase FM (Section II-C).

The classic clustering methodology that multilevel partitioning
generalises: cluster ``H_0`` once to induce ``H_1``, run FM on ``H_1``,
project the solution back, and run FM again on ``H_0`` as a refinement
step.  Implemented here as the single-level special case of the ML
machinery, and used as an ablation baseline showing why *multiple*
levels matter.
"""

from __future__ import annotations

import random
from typing import Optional

from ..clustering import induce, match
from ..clustering.project import project
from ..hypergraph import Hypergraph
from ..rng import SeedLike, make_rng
from ..fm.config import FMConfig
from ..fm.engine import FMResult, fm_bipartition

__all__ = ["two_phase_fm"]


def two_phase_fm(hg: Hypergraph,
                 config: Optional[FMConfig] = None,
                 matching_ratio: float = 1.0,
                 matching_scheme: str = "conn",
                 seed: SeedLike = None,
                 rng: Optional[random.Random] = None) -> FMResult:
    """One clustering level, FM on the coarse netlist, FM refinement."""
    config = config or FMConfig()
    rng = rng if rng is not None else make_rng(seed)

    clustering = match(hg, ratio=matching_ratio, scheme=matching_scheme,
                       rng=rng)
    if clustering.num_clusters >= hg.num_modules:
        # Clustering made no progress (degenerate netlist): plain FM.
        return fm_bipartition(hg, initial=None, config=config, rng=rng)
    coarse = induce(hg, clustering)
    coarse_result = fm_bipartition(coarse, initial=None, config=config,
                                   rng=rng)
    projected = project(coarse_result.partition, clustering)
    return fm_bipartition(hg, initial=projected, config=config, rng=rng)
