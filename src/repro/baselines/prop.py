"""PROP-style probabilistic gain partitioning (Dutt–Deng [13]).

PROP replaces FM's immediate cut-delta gain with a probabilistic one:
every vertex carries a probability of eventually moving to the other
side (initially 0.95), and a vertex's gain is the *expected* cut
reduction given its neighbours' move probabilities.  Because the gains
are non-discrete, the FM bucket structure cannot be used and runtimes
grow by the 4-8x the paper reports (Section II-A); we use a lazy
max-heap instead.

Model (documented substitution — see DESIGN.md): a free vertex ``u``
currently in part ``P`` is in ``P`` with probability ``1 - p_u`` and in
the other part with probability ``p_u``; moved (locked) vertices are
certain.  For vertex ``v`` on net ``e``, the gain contribution is

    P(e uncut if v moves)  -  P(e uncut if v stays)
      = prod_{u in same(v)} p_u * prod_{u in other(v)} (1 - p_u)
      - prod_{u in same(v)} (1 - p_u) * prod_{u in other(v)} p_u

over the other pins ``u`` of ``e``, weighted by the net weight.  The
pass structure (move-once, best-prefix rollback, repeat until no
improvement) is FM's.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..partition import (BalanceConstraint, Partition, PartitionState, cut,
                         random_partition)
from ..partition.rebalance import rebalance_random
from ..rng import SeedLike, make_rng
from ..fm.config import FMConfig
from ..fm.engine import FMResult, _active_nets

__all__ = ["prop_bipartition", "INITIAL_MOVE_PROBABILITY"]

#: Dutt-Deng's initial probability that a vertex will move.
INITIAL_MOVE_PROBABILITY = 0.95


def _vertex_gain(state: PartitionState, probability: List[float],
                 v: int) -> float:
    hg = state.hg
    side = state.part_of[v]
    gain = 0.0
    for e in hg.nets(v):
        if not state.active[e]:
            continue
        to_other = 1.0
        to_same = 1.0
        for u in hg.pins(e):
            if u == v:
                continue
            p = probability[u]
            if state.part_of[u] == side:
                to_other *= p
                to_same *= 1.0 - p
            else:
                to_other *= 1.0 - p
                to_same *= p
        gain += hg.net_weight(e) * (to_other - to_same)
    return gain


def prop_bipartition(hg: Hypergraph,
                     initial: Optional[Partition] = None,
                     config: Optional[FMConfig] = None,
                     balance: Optional[BalanceConstraint] = None,
                     initial_probability: float = INITIAL_MOVE_PROBABILITY,
                     seed: SeedLike = None,
                     rng: Optional[random.Random] = None) -> FMResult:
    """Bipartition ``hg`` with the PROP probabilistic gain engine."""
    if not 0 < initial_probability < 1:
        raise PartitionError(
            f"initial_probability must be in (0, 1), got "
            f"{initial_probability}")
    config = config or FMConfig()
    rng = rng if rng is not None else make_rng(seed)
    if balance is None:
        balance = BalanceConstraint.from_tolerance(hg, config.tolerance, k=2)
    if initial is None:
        initial = random_partition(hg, k=2, rng=rng)
    if not balance.is_feasible(initial.part_areas(hg)):
        initial = rebalance_random(hg, initial, balance, rng=rng)

    state = PartitionState(hg, initial,
                           active_nets=_active_nets(hg, config.max_net_size))
    initial_cut = cut(hg, initial)
    best_overall = state.cut_weight
    passes = 0
    total_moves = 0
    pass_cuts: List[int] = []
    max_passes = config.max_passes or 1000
    areas = hg.areas()
    lower, upper = balance.lower, balance.upper

    while passes < max_passes:
        passes += 1
        probability = [initial_probability] * hg.num_modules
        gains = [_vertex_gain(state, probability, v) for v in hg.modules()]
        # Lazy max-heap of (-gain, tiebreak, vertex, stamp).
        stamp = [0] * hg.num_modules
        heap = [(-gains[v], v, 0) for v in hg.modules()]
        heapq.heapify(heap)
        locked = [False] * hg.num_modules
        moves: List[int] = []
        best_cut = state.cut_weight
        best_index = 0

        deferred: List[tuple] = []
        while heap:
            entry = heapq.heappop(heap)
            neg_gain, v, s = entry
            if locked[v] or s != stamp[v]:
                continue
            src = state.part_of[v]
            a = areas[v]
            if not (state.part_area[src] - a >= lower
                    and state.part_area[1 - src] + a <= upper):
                # Balance-infeasible right now: park the entry; it is
                # re-queued after the next successful move (which is the
                # only event that can restore its feasibility).
                deferred.append(entry)
                continue

            locked[v] = True
            probability[v] = 0.0  # the move is now certain history
            state.move(v, 1 - src)
            moves.append(v)
            total_moves += 1

            # Refresh the gains of free neighbours.
            seen = set()
            for e in hg.nets(v):
                if not state.active[e]:
                    continue
                for u in hg.pins(e):
                    if u != v and not locked[u] and u not in seen:
                        seen.add(u)
                        gains[u] = _vertex_gain(state, probability, u)
                        stamp[u] += 1
                        heapq.heappush(heap, (-gains[u], u, stamp[u]))

            for parked in deferred:
                heapq.heappush(heap, parked)
            deferred.clear()

            if state.cut_weight < best_cut:
                best_cut = state.cut_weight
                best_index = len(moves)

        for v in reversed(moves[best_index:]):
            state.move(v, 1 - state.part_of[v])
        pass_cuts.append(state.cut_weight)
        if state.cut_weight >= best_overall:
            break
        best_overall = state.cut_weight

    final = state.to_partition()
    return FMResult(partition=final, cut=cut(hg, final),
                    internal_cut=state.cut_weight,
                    initial_cut=initial_cut, passes=passes,
                    total_moves=total_moves, pass_cuts=pass_cuts)
