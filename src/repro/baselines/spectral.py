"""Spectral bisection baseline (Hagen–Kahng EIG1 lineage [18]).

Referenced throughout the paper as the classical comparator that
PARABOLI beat by 50% (Section IV-C).  The netlist hypergraph is
expanded into a weighted graph with the standard clique model — each
net of size ``s`` and weight ``w`` contributes an edge of weight
``w / (s - 1)`` between every pin pair — and the Fiedler vector of its
Laplacian induces a module ordering that is split at the best
area-feasible point.  An optional FM refinement polishes the split
(the usual "spectral + FM" configuration).
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..partition import BalanceConstraint, Partition, cut
from ..rng import SeedLike, make_rng
from ..fm.config import FMConfig
from ..fm.engine import FMResult, fm_bipartition

__all__ = ["clique_laplacian", "fiedler_vector", "spectral_bipartition"]


def clique_laplacian(hg: Hypergraph) -> sp.csr_matrix:
    """Laplacian of the clique-expansion graph of ``hg``."""
    n = hg.num_modules
    rows, cols, vals = [], [], []
    for e in hg.all_nets():
        pins = hg.pins(e)
        w = hg.net_weight(e) / (len(pins) - 1)
        for i, u in enumerate(pins):
            for v in pins[i + 1:]:
                rows.extend((u, v))
                cols.extend((v, u))
                vals.extend((-w, -w))
    adjacency = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    degrees = -np.asarray(adjacency.sum(axis=1)).ravel()
    return (sp.diags(degrees) + adjacency).tocsr()


def fiedler_vector(hg: Hypergraph, seed: SeedLike = None) -> np.ndarray:
    """Eigenvector of the second-smallest Laplacian eigenvalue.

    Uses shift-invert at a small negative shift (the Laplacian is
    singular at 0, so the shift keeps the factorisation nonsingular).
    Falls back to a dense solve for tiny or numerically stubborn
    instances.
    """
    laplacian = clique_laplacian(hg)
    n = hg.num_modules
    if n < 3:
        return np.arange(n, dtype=float)
    rng = np.random.default_rng(make_rng(seed).randrange(2**32))
    if n <= 64:
        values, vectors = np.linalg.eigh(laplacian.toarray())
        return vectors[:, 1]
    try:
        v0 = rng.standard_normal(n)
        _, vectors = spla.eigsh(laplacian.tocsc(), k=2, sigma=-1e-3,
                                which="LM", v0=v0)
        return vectors[:, 1]
    except Exception:
        values, vectors = np.linalg.eigh(laplacian.toarray())
        return vectors[:, 1]


def spectral_bipartition(hg: Hypergraph,
                         config: Optional[FMConfig] = None,
                         refine: bool = True,
                         seed: SeedLike = None,
                         rng: Optional[random.Random] = None) -> FMResult:
    """Fiedler-ordering bisection, optionally FM-refined.

    The ordering is split at the prefix whose area is closest to half
    the total (the split is always balance-feasible under the paper's
    constraint because module areas are bounded by ``A(v*)``).
    """
    if hg.num_modules < 2:
        raise PartitionError("cannot bipartition fewer than two modules")
    config = config or FMConfig()
    rng = rng if rng is not None else make_rng(seed)
    fiedler = fiedler_vector(hg, seed=rng.randrange(2**32))
    order = np.argsort(fiedler, kind="stable")

    half = hg.total_area / 2
    assignment = [1] * hg.num_modules
    accumulated = 0.0
    for v in order:
        if accumulated + hg.area(int(v)) > half and accumulated > 0:
            break
        assignment[int(v)] = 0
        accumulated += hg.area(int(v))
    partition = Partition(assignment, 2)

    if not refine:
        solution_cut = cut(hg, partition)
        return FMResult(partition=partition, cut=solution_cut,
                        internal_cut=solution_cut,
                        initial_cut=solution_cut, passes=0, total_moves=0)
    balance = BalanceConstraint.from_tolerance(hg, config.tolerance, k=2)
    return fm_bipartition(hg, initial=partition, config=config,
                          balance=balance, rng=rng)
