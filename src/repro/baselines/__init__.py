"""Comparator algorithms: LSMC, two-phase FM, spectral bisection, the
GORDIAN quadratic-placement simulator, and the PROP probabilistic-gain
engine."""

from .gordian import (GordianResult, gordian_bipartition,
                      gordian_quadrisection, perimeter_positions,
                      quadratic_placement)
from .lsmc import LSMCResult, kick, lsmc_bipartition, lsmc_kway
from .prop import INITIAL_MOVE_PROBABILITY, prop_bipartition
from .spectral import (clique_laplacian, fiedler_vector,
                       spectral_bipartition)
from .twophase import two_phase_fm

__all__ = [
    "LSMCResult",
    "lsmc_bipartition",
    "lsmc_kway",
    "kick",
    "two_phase_fm",
    "spectral_bipartition",
    "fiedler_vector",
    "clique_laplacian",
    "GordianResult",
    "gordian_bipartition",
    "gordian_quadrisection",
    "quadratic_placement",
    "perimeter_positions",
    "prop_bipartition",
    "INITIAL_MOVE_PROBABILITY",
]
