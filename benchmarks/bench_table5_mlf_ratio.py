"""Table V: ML_F under matching ratios R in {1.0, 0.5, 0.33}.

Paper shape to verify: smaller R (slower coarsening, more levels)
lowers the average cut and raises CPU time; R = 0.5 and R = 0.33 are
nearly indistinguishable in quality.
"""

from statistics import mean

from repro.harness import table5_mlf_ratio


def test_table5_mlf_ratio(benchmark, bench_params, save_table):
    result = benchmark.pedantic(
        table5_mlf_ratio,
        kwargs=dict(scale=bench_params["scale"],
                    runs=bench_params["runs"],
                    seed=bench_params["seed"],
                    jobs=bench_params["jobs"]),
        rounds=1, iterations=1)
    save_table(result, "table5.txt")

    avg = {r: mean(cells[f"R={r:g}"].avg_cut
                   for cells in result.cells.values())
           for r in (1.0, 0.5, 0.33)}
    cpu = {r: sum(cells[f"R={r:g}"].cpu_seconds
                  for cells in result.cells.values())
           for r in (1.0, 0.5, 0.33)}
    print(f"suite-mean avg cut by R: {avg}; total CPU by R: {cpu}")
    # Slower coarsening must not hurt quality and must cost more time.
    assert avg[0.5] <= avg[1.0] * 1.05
    assert cpu[0.33] > cpu[1.0]
