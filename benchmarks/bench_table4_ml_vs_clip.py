"""Table IV: CLIP vs ML_F vs ML_C with complete matching (R = 1).

Paper shape to verify: ML_C produces the lowest average cuts, followed
by ML_F, then CLIP; ML costs more CPU than flat CLIP.
"""

from statistics import mean

from repro.harness import table4_ml_vs_clip


def test_table4_ml_vs_clip(benchmark, bench_params, save_table):
    result = benchmark.pedantic(
        table4_ml_vs_clip,
        kwargs=dict(scale=bench_params["scale"],
                    runs=bench_params["runs"],
                    seed=bench_params["seed"],
                    jobs=bench_params["jobs"]),
        rounds=1, iterations=1)
    save_table(result, "table4.txt")

    averages = {name: mean(cells[name].avg_cut
                           for cells in result.cells.values())
                for name in ("CLIP", "MLF", "MLC")}
    print("suite-mean avg cut: "
          + ", ".join(f"{k} {v:.1f}" for k, v in averages.items()))
    # The multilevel variants must beat flat CLIP on average cut.
    assert averages["MLC"] < averages["CLIP"]
    assert averages["MLF"] < averages["CLIP"]
