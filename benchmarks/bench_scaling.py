"""Scaling study: how the FM-vs-ML gap grows with instance size.

Not a numbered table, but the paper's central argument (Section II-C:
"As problem sizes grow larger, the performance of iterative
improvement approaches such as FM tend to degrade"), made measurable:
the same circuit family at growing sizes, flat FM vs ML_C, reporting
average cut and CPU per run.  At few-thousand-module scale with few
runs the gap's *growth* with size is too seed-sensitive to assert
(FM's run-to-run variance dominates), so the assertion here is the
stable core of the claim: ML never loses at any size.  The full-size
trend emerges by raising REPRO_BENCH_RUNS and extending SIZES.
"""

import time
from statistics import mean

from repro.core import MLConfig, ml_bipartition
from repro.harness import TableResult
from repro.hypergraph import hierarchical_circuit
from repro.rng import child_seeds, stable_seed
from repro.fm.engine import fm_bipartition

SIZES = (500, 1000, 2000, 4000)


def test_scaling_fm_vs_ml(benchmark, bench_params, save_table):
    runs = max(3, bench_params["runs"] // 2)
    config = MLConfig(engine="clip")

    def run():
        rows = []
        for n in SIZES:
            hg = hierarchical_circuit(n, int(1.2 * n),
                                      seed=stable_seed("scaling", n))
            seeds = child_seeds(stable_seed("runs", n), runs)
            start = time.perf_counter()
            fm_cuts = [fm_bipartition(hg, seed=s).cut for s in seeds]
            fm_time = (time.perf_counter() - start) / runs
            start = time.perf_counter()
            ml_cuts = [ml_bipartition(hg, config=config, seed=s).cut
                       for s in seeds]
            ml_time = (time.perf_counter() - start) / runs
            ratio = mean(fm_cuts) / mean(ml_cuts)
            rows.append([n, round(mean(fm_cuts), 1),
                         round(mean(ml_cuts), 1), round(ratio, 2),
                         round(fm_time, 2), round(ml_time, 2)])
        return TableResult(
            title=f"Scaling: flat FM vs ML_C avg cut by instance size "
                  f"({runs} runs)",
            headers=["modules", "FM avg", "MLC avg", "FM/MLC",
                     "FM s/run", "MLC s/run"],
            rows=rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(result, "scaling.txt")

    ratios = {row[0]: row[3] for row in result.rows}
    print(f"FM/MLC avg-cut ratio by size: {ratios}")
    # ML must match or beat flat FM at every size.
    assert all(r >= 1.0 for r in ratios.values())
