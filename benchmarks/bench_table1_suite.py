"""Table I: benchmark circuit characteristics.

Regenerates the suite's size table — the paper's spec values next to
the synthetic stand-ins actually used at the benchmark scale — and
times suite generation itself.
"""

from repro.harness import table1_characteristics
from repro.hypergraph import benchmark_names


def test_table1_suite(benchmark, bench_params, save_table):
    result = benchmark.pedantic(
        table1_characteristics,
        kwargs=dict(circuits=benchmark_names(),
                    scale=min(bench_params["scale"], 0.05),
                    seed=bench_params["seed"]),
        rounds=1, iterations=1)
    assert len(result.rows) == 23
    save_table(result, "table1.txt")
