"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at reduced
scale (see DESIGN.md) and both prints it and writes it under
``benchmarks/results/``.  Environment knobs:

* ``REPRO_BENCH_SCALE``  — size multiplier on Table I circuits
  (default 0.1; the paper's full scale is 1.0)
* ``REPRO_BENCH_RUNS``   — runs per cell (default 5; the paper uses 100)
* ``REPRO_BENCH_SEED``   — top-level seed (default 0)
* ``REPRO_BENCH_JOBS``   — worker processes per table cell (default 1;
  the cut columns are identical at any value, only timings change)

Raising scale/runs toward paper settings is supported but slow in pure
Python (the repro band for this paper notes exactly this).
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "5"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def bench_params():
    return {"scale": BENCH_SCALE, "runs": BENCH_RUNS, "seed": BENCH_SEED,
            "jobs": BENCH_JOBS}


@pytest.fixture(scope="session")
def save_table():
    """Print a rendered TableResult and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result, filename: str) -> None:
        text = result.render()
        print("\n" + text + "\n")
        (RESULTS_DIR / filename).write_text(text + "\n")

    return _save
