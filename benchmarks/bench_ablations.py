"""Ablations over the design choices DESIGN.md calls out.

Not a paper table — these isolate the ingredients the paper credits for
ML's quality, plus the Section V future-work features implemented here:

* coarsening scheme: the paper's ``conn`` matching vs ``heavy``
  (no area term) vs ``random`` (Chaco-style) matching;
* bucket discipline inside ML (LIFO vs FIFO refinement);
* boundary refinement on/off (Section V);
* extra coarsest-level starts (Section V);
* direct 4-way FM vs recursive bisection;
* parallel coarse-net merging on/off in ``Induce``.
"""

from statistics import mean

from repro.clustering import induce, match
from repro.core import (MLConfig, ml_bipartition, ml_quadrisection,
                        recursive_bisection)
from repro.harness import TableResult
from repro.hypergraph import load_circuit
from repro.partition import cut
from repro.rng import child_seeds, stable_seed
from repro.fm import FMConfig


def _avg_cut(fn, runs, label):
    cuts = [fn(s).cut for s in child_seeds(stable_seed(label), runs)]
    return round(mean(cuts), 1), min(cuts)


def test_ablation_matching_scheme(benchmark, bench_params, save_table):
    hg = load_circuit("biomed", scale=bench_params["scale"],
                      seed=bench_params["seed"])
    runs = bench_params["runs"]

    def run():
        rows = []
        for scheme in ("conn", "heavy", "random"):
            config = MLConfig(engine="clip", matching_scheme=scheme)
            avg, best = _avg_cut(
                lambda s, c=config: ml_bipartition(hg, config=c, seed=s),
                runs, f"scheme-{scheme}")
            rows.append([scheme, best, avg])
        return TableResult(
            title=f"Ablation: Match scheme (ML_C on biomed, {runs} runs)",
            headers=["scheme", "min cut", "avg cut"], rows=rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(result, "ablation_matching.txt")
    by_scheme = {row[0]: row[2] for row in result.rows}
    # The paper's conn matching should not lose to random matching.
    assert by_scheme["conn"] <= by_scheme["random"] * 1.10


def test_ablation_refinement_policy(benchmark, bench_params, save_table):
    hg = load_circuit("biomed", scale=bench_params["scale"],
                      seed=bench_params["seed"])
    runs = bench_params["runs"]

    def run():
        rows = []
        for policy in ("lifo", "fifo"):
            config = MLConfig(engine="fm",
                              fm=FMConfig(bucket_policy=policy))
            avg, best = _avg_cut(
                lambda s, c=config: ml_bipartition(hg, config=c, seed=s),
                runs, f"policy-{policy}")
            rows.append([policy, best, avg])
        return TableResult(
            title=f"Ablation: bucket policy inside ML_F (biomed, "
                  f"{runs} runs)",
            headers=["policy", "min cut", "avg cut"], rows=rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(result, "ablation_policy.txt")
    lifo, fifo = result.rows[0][2], result.rows[1][2]
    # Multilevel softens the LIFO/FIFO gap but must not invert it badly.
    assert lifo <= fifo * 1.15


def test_ablation_boundary_and_starts(benchmark, bench_params, save_table):
    hg = load_circuit("avqsmall", scale=bench_params["scale"],
                      seed=bench_params["seed"])
    runs = max(3, bench_params["runs"] // 2)
    variants = [
        ("baseline ML_F", MLConfig(engine="fm")),
        ("+ boundary FM", MLConfig(engine="fm",
                                   fm=FMConfig(boundary=True))),
        ("+ 8 coarsest starts", MLConfig(engine="fm", coarsest_starts=8)),
    ]

    def run():
        import time
        rows = []
        for label, config in variants:
            start = time.perf_counter()
            avg, best = _avg_cut(
                lambda s, c=config: ml_bipartition(hg, config=c, seed=s),
                runs, label)
            rows.append([label, best, avg,
                         round(time.perf_counter() - start, 2)])
        return TableResult(
            title=f"Ablation: Section V features (ML_F on avqsmall, "
                  f"{runs} runs)",
            headers=["variant", "min cut", "avg cut", "cpu (s)"],
            rows=rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(result, "ablation_sectionv.txt")
    base_avg = result.rows[0][2]
    for row in result.rows[1:]:
        assert row[2] <= base_avg * 1.25  # features must not wreck quality


def test_ablation_direct_vs_recursive_kway(benchmark, bench_params,
                                           save_table):
    hg = load_circuit("primary2", scale=bench_params["scale"],
                      seed=bench_params["seed"])
    runs = max(2, bench_params["runs"] // 2)

    def run():
        direct = [ml_quadrisection(hg, seed=s).cut
                  for s in child_seeds(stable_seed("direct"), runs)]
        recursive = [cut(hg, recursive_bisection(hg, k=4, seed=s))
                     for s in child_seeds(stable_seed("recursive"), runs)]
        rows = [["direct 4-way FM", min(direct),
                 round(mean(direct), 1)],
                ["recursive bisection", min(recursive),
                 round(mean(recursive), 1)]]
        return TableResult(
            title=f"Ablation: direct k-way vs recursive bisection "
                  f"(primary2, k=4, {runs} runs)",
            headers=["strategy", "min cut", "avg cut"], rows=rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(result, "ablation_kway.txt")
    assert result.rows[0][1] > 0 and result.rows[1][1] > 0


def test_ablation_parallel_net_merging(benchmark, bench_params, save_table):
    hg = load_circuit("s9234", scale=bench_params["scale"],
                      seed=bench_params["seed"])

    def run():
        clustering = match(hg, ratio=1.0, seed=0)
        merged = induce(hg, clustering, merge_parallel=True)
        unmerged = induce(hg, clustering, merge_parallel=False)
        rows = [["merged", merged.num_nets, merged.total_net_weight],
                ["unmerged", unmerged.num_nets,
                 unmerged.total_net_weight]]
        return TableResult(
            title="Ablation: Induce parallel-net merging (s9234, one "
                  "coarsening level)",
            headers=["mode", "coarse nets", "total weight"], rows=rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(result, "ablation_merge.txt")
    merged_row, unmerged_row = result.rows
    assert merged_row[1] <= unmerged_row[1]
    assert merged_row[2] == unmerged_row[2]  # weight (= cut metric) equal
