"""Table III: FM vs CLIP (100-run protocol at reduced scale).

Paper shape to verify: CLIP's average cut is below FM's, with CPU time
of the same order.
"""

from statistics import mean

from repro.harness import table3_fm_vs_clip


def test_table3_fm_vs_clip(benchmark, bench_params, save_table):
    result = benchmark.pedantic(
        table3_fm_vs_clip,
        kwargs=dict(scale=bench_params["scale"],
                    runs=bench_params["runs"],
                    seed=bench_params["seed"],
                    jobs=bench_params["jobs"]),
        rounds=1, iterations=1)
    save_table(result, "table3.txt")

    fm_avg = mean(cells["FM"].avg_cut for cells in result.cells.values())
    clip_avg = mean(cells["CLIP"].avg_cut for cells in result.cells.values())
    fm_cpu = sum(cells["FM"].cpu_seconds for cells in result.cells.values())
    clip_cpu = sum(cells["CLIP"].cpu_seconds
                   for cells in result.cells.values())
    print(f"suite-mean avg cut: FM {fm_avg:.1f} vs CLIP {clip_avg:.1f}; "
          f"CPU {fm_cpu:.1f}s vs {clip_cpu:.1f}s")
    assert clip_avg <= fm_avg * 1.05
    assert clip_cpu < fm_cpu * 4
