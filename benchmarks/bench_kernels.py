"""Kernel benchmark baseline: reference vs CSR vs NumPy, per hot path.

Times the four kernels of the coarsen–refine hot path in every kernel
mode of :data:`repro.kernels.KERNEL_MODES` on the Table I-calibrated
synthetic suite:

* ``state_init``  — :class:`~repro.partition.PartitionState`
  construction (counts/spans/objectives from scratch);
* ``fm_pass``     — a full FM bipartitioning call (all passes, the
  two-phase gain-update loops and bucket maintenance);
* ``coarsen``     — :func:`~repro.core.ml.build_hierarchy` (matching +
  induction down to the coarsening threshold);
* ``ml_end_to_end`` — :func:`~repro.core.ml.ml_bipartition`, the MLc
  configuration the paper's Table VI/VIII measure.

Every cell is a best-of-``REPEATS`` wall-clock figure, and results are
asserted identical *within a cut class* (``repro.kernels.cut_class``):
``csr``/``reference`` are bit-identical everywhere; ``numpy`` matches
them on ``state_init`` and ``coarsen`` (order-preserving kernels) and
pins its own refinement outcomes (DESIGN.md §13).  The benchmark
doubles as an oracle run for both contracts.  The table is printed,
and script runs (``python benchmarks/bench_kernels.py``) write it to
``BENCH_kernels.json`` at the repo root — the file that tracks the
repo's kernel-performance trajectory, committed from a
``REPRO_BENCH_SCALE=0.3`` run; pytest passes only overwrite it when
``REPRO_BENCH_WRITE=1``.

Environment knobs: ``REPRO_BENCH_SCALE`` (default 0.05, the mini-suite
scale), ``REPRO_BENCH_KERNEL_REPEATS`` (default 3),
``REPRO_BENCH_KERNEL_CIRCUITS`` (comma-separated subset of the mini
suite), ``REPRO_BENCH_WRITE`` (write the JSON from a pytest run).
"""

import json
import os
import platform
import time
from pathlib import Path

from repro import MLConfig, build_hierarchy, ml_bipartition
from repro.fm import fm_bipartition
from repro.hypergraph import load_circuit, mini_suite_names
from repro.kernels import KERNEL_MODES, cut_class, use_kernels
from repro.partition import PartitionState, random_partition

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
REPEATS = int(os.environ.get("REPRO_BENCH_KERNEL_REPEATS", "3"))
SEED = 7
CONFIG = MLConfig(engine="clip")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: Kernels whose results must be bit-identical across *all* modes (the
#: order-preserving vectorizations); the refinement kernels only have
#: to agree within a cut class.
_ORDER_PRESERVING = ("state_init", "coarsen")


def _circuit_names():
    names = os.environ.get("REPRO_BENCH_KERNEL_CIRCUITS")
    if names:
        return [n.strip() for n in names.split(",") if n.strip()]
    return mini_suite_names()


def _kernels(hg):
    """(name, callable) pairs; each callable returns a comparable value."""
    seed_part = random_partition(hg, seed=SEED)

    def state_init():
        state = PartitionState(hg, seed_part)
        return (state.cut_weight, state.soed_weight)

    def fm_pass():
        result = fm_bipartition(hg, seed=SEED)
        return (result.cut, result.partition.assignment)

    def coarsen():
        hierarchy = build_hierarchy(hg, CONFIG, seed=SEED)
        return [n.num_modules for n in hierarchy.netlists]

    def ml_end_to_end():
        result = ml_bipartition(hg, config=CONFIG, seed=SEED)
        return (result.cut, result.partition.assignment)

    return [("state_init", state_init), ("fm_pass", fm_pass),
            ("coarsen", coarsen), ("ml_end_to_end", ml_end_to_end)]


def _best_of(fn):
    fn()  # warm the per-netlist caches (CSR views, active sets)
    best = float("inf")
    value = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_bench():
    modes = list(KERNEL_MODES)
    rows = []
    circuits = {}
    for name in _circuit_names():
        hg = load_circuit(name, scale=SCALE, seed=0)
        circuits[name] = {"modules": hg.num_modules, "nets": hg.num_nets,
                          "pins": hg.num_pins}
        for kernel, fn in _kernels(hg):
            times = {}
            values = {}
            for mode in modes:
                with use_kernels(mode):
                    times[mode], values[mode] = _best_of(fn)
            # Identity contracts: equal within a cut class everywhere,
            # equal across classes for the order-preserving kernels.
            by_class = {}
            for mode in modes:
                by_class.setdefault(cut_class(mode), []).append(mode)
            for cls, members in by_class.items():
                for mode in members[1:]:
                    assert values[mode] == values[members[0]], (
                        f"{cls} modes diverged on {name}/{kernel}")
            if kernel in _ORDER_PRESERVING:
                for mode in modes[1:]:
                    assert values[mode] == values[modes[0]], (
                        f"order-preserving kernel {name}/{kernel} "
                        f"diverged across modes")
            row = {"circuit": name, "kernel": kernel}
            for mode in modes:
                row[f"{mode}_s"] = round(times[mode], 6)
            baseline = times["reference"]
            row["speedup"] = {
                mode: round(baseline / times[mode], 3) if times[mode]
                else None
                for mode in modes if mode != "reference"}
            rows.append(row)

    largest = max(circuits, key=lambda n: circuits[n]["modules"])
    headline = next(r for r in rows
                    if r["circuit"] == largest
                    and r["kernel"] == "ml_end_to_end")
    report = {
        "meta": {
            "scale": SCALE,
            "repeats": REPEATS,
            "seed": SEED,
            "config": "MLc (engine=clip)",
            "python": platform.python_version(),
            "modes": modes,
        },
        "circuits": circuits,
        "results": rows,
        "summary": {
            "largest_circuit": largest,
            "ml_end_to_end_speedup": headline["speedup"]["csr"],
            "ml_end_to_end_speedup_numpy": headline["speedup"]["numpy"],
            "numpy_vs_csr": round(
                headline["csr_s"] / headline["numpy_s"], 3)
            if headline["numpy_s"] else None,
        },
    }
    return report


def print_report(report):
    modes = report["meta"]["modes"]
    print(f"\nkernel benchmark (scale={report['meta']['scale']}, "
          f"best of {report['meta']['repeats']})")
    header = f"{'circuit':>10} {'kernel':>14}"
    for mode in modes:
        header += f" {mode[:9]:>9}"
    header += f" {'csr x':>7} {'numpy x':>8}"
    print(header)
    for r in report["results"]:
        line = f"{r['circuit']:>10} {r['kernel']:>14}"
        for mode in modes:
            line += f" {r[f'{mode}_s']:9.4f}"
        line += (f" {r['speedup']['csr']:7.2f}"
                 f" {r['speedup']['numpy']:8.2f}")
        print(line)
    s = report["summary"]
    print(f"largest circuit {s['largest_circuit']}: "
          f"csr {s['ml_end_to_end_speedup']:.2f}x, "
          f"numpy {s['ml_end_to_end_speedup_numpy']:.2f}x end-to-end MLc "
          f"(numpy vs csr {s['numpy_vs_csr']:.2f}x)")


def write_report(report):
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")


def test_bench_kernels():
    report = run_bench()
    print_report(report)
    # The committed BENCH_kernels.json is generated by a script run at
    # REPRO_BENCH_SCALE=0.3 (where the headline ratios hold); a
    # default-scale pytest pass must not quietly replace it, so the
    # suite only overwrites on explicit request.
    if os.environ.get("REPRO_BENCH_WRITE", "").lower() in ("1", "true"):
        write_report(report)
    # Identity is asserted per cell inside run_bench; here only a loose
    # sanity bound so a loaded CI box cannot flake the suite — the
    # committed BENCH_kernels.json records the real ratios.
    assert report["summary"]["ml_end_to_end_speedup"] > 1.0
    assert report["summary"]["ml_end_to_end_speedup_numpy"] > 1.0


if __name__ == "__main__":
    report = run_bench()
    print_report(report)
    write_report(report)
    assert report["summary"]["ml_end_to_end_speedup"] > 1.0
    assert report["summary"]["ml_end_to_end_speedup_numpy"] > 1.0
