"""Kernel benchmark baseline: reference vs CSR kernels, per hot path.

Times the four kernels of the coarsen–refine hot path in both kernel
modes (``repro.kernels``) on the Table I-calibrated synthetic suite:

* ``state_init``  — :class:`~repro.partition.PartitionState`
  construction (counts/spans/objectives from scratch);
* ``fm_pass``     — a full FM bipartitioning call (all passes, the
  two-phase gain-update loops and bucket maintenance);
* ``coarsen``     — :func:`~repro.core.ml.build_hierarchy` (matching +
  induction down to the coarsening threshold);
* ``ml_end_to_end`` — :func:`~repro.core.ml.ml_bipartition`, the MLc
  configuration the paper's Table VI/VIII measure.

Every cell is a best-of-``REPEATS`` wall-clock pair (reference first,
then CSR), and the two modes' *results* are asserted identical — the
bit-identity contract means the benchmark doubles as an oracle run.
The table is printed and written to ``BENCH_kernels.json`` at the repo
root, the file that tracks the repo's kernel-performance trajectory.

Run directly (``python benchmarks/bench_kernels.py``) or via pytest.
Environment knobs: ``REPRO_BENCH_SCALE`` (default 0.05, the mini-suite
scale), ``REPRO_BENCH_KERNEL_REPEATS`` (default 3),
``REPRO_BENCH_KERNEL_CIRCUITS`` (comma-separated subset of the mini
suite).
"""

import json
import os
import platform
import time
from pathlib import Path

from repro import MLConfig, build_hierarchy, ml_bipartition
from repro.fm import fm_bipartition
from repro.hypergraph import load_circuit, mini_suite_names
from repro.kernels import use_kernels
from repro.partition import PartitionState, random_partition

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
REPEATS = int(os.environ.get("REPRO_BENCH_KERNEL_REPEATS", "3"))
SEED = 7
CONFIG = MLConfig(engine="clip")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _circuit_names():
    names = os.environ.get("REPRO_BENCH_KERNEL_CIRCUITS")
    if names:
        return [n.strip() for n in names.split(",") if n.strip()]
    return mini_suite_names()


def _kernels(hg):
    """(name, callable) pairs; each callable returns a comparable value."""
    seed_part = random_partition(hg, seed=SEED)

    def state_init():
        state = PartitionState(hg, seed_part)
        return (state.cut_weight, state.soed_weight)

    def fm_pass():
        result = fm_bipartition(hg, seed=SEED)
        return (result.cut, result.partition.assignment)

    def coarsen():
        hierarchy = build_hierarchy(hg, CONFIG, seed=SEED)
        return [n.num_modules for n in hierarchy.netlists]

    def ml_end_to_end():
        result = ml_bipartition(hg, config=CONFIG, seed=SEED)
        return (result.cut, result.partition.assignment)

    return [("state_init", state_init), ("fm_pass", fm_pass),
            ("coarsen", coarsen), ("ml_end_to_end", ml_end_to_end)]


def _best_of(fn):
    fn()  # warm the per-netlist caches (CSR views, active sets)
    best = float("inf")
    value = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_bench():
    rows = []
    circuits = {}
    for name in _circuit_names():
        hg = load_circuit(name, scale=SCALE, seed=0)
        circuits[name] = {"modules": hg.num_modules, "nets": hg.num_nets,
                          "pins": hg.num_pins}
        for kernel, fn in _kernels(hg):
            with use_kernels("reference"):
                t_ref, v_ref = _best_of(fn)
            with use_kernels("csr"):
                t_csr, v_csr = _best_of(fn)
            assert v_csr == v_ref, (
                f"kernel modes diverged on {name}/{kernel}")
            rows.append({
                "circuit": name,
                "kernel": kernel,
                "reference_s": round(t_ref, 6),
                "csr_s": round(t_csr, 6),
                "speedup": round(t_ref / t_csr, 3) if t_csr else None,
                "identical": True,
            })

    largest = max(circuits, key=lambda n: circuits[n]["modules"])
    headline = next(r for r in rows
                    if r["circuit"] == largest
                    and r["kernel"] == "ml_end_to_end")
    report = {
        "meta": {
            "scale": SCALE,
            "repeats": REPEATS,
            "seed": SEED,
            "config": "MLc (engine=clip)",
            "python": platform.python_version(),
            "modes": ["reference", "csr"],
        },
        "circuits": circuits,
        "results": rows,
        "summary": {
            "largest_circuit": largest,
            "ml_end_to_end_speedup": headline["speedup"],
        },
    }
    return report


def print_report(report):
    print(f"\nkernel benchmark (scale={report['meta']['scale']}, "
          f"best of {report['meta']['repeats']})")
    header = f"{'circuit':>10} {'kernel':>14} {'ref':>9} {'csr':>9} {'x':>6}"
    print(header)
    for r in report["results"]:
        print(f"{r['circuit']:>10} {r['kernel']:>14} "
              f"{r['reference_s']:9.4f} {r['csr_s']:9.4f} "
              f"{r['speedup']:6.2f}")
    s = report["summary"]
    print(f"largest circuit {s['largest_circuit']}: "
          f"{s['ml_end_to_end_speedup']:.2f}x end-to-end MLc")


def test_bench_kernels():
    report = run_bench()
    print_report(report)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    # Bit-identity is asserted per cell inside run_bench; here only a
    # loose sanity bound so a loaded CI box cannot flake the suite —
    # the committed BENCH_kernels.json records the real (>=2x) ratio.
    assert report["summary"]["ml_end_to_end_speedup"] > 1.0


if __name__ == "__main__":
    test_bench_kernels()
