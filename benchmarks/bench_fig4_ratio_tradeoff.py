"""Figure 4: matching ratio R vs average cut (avqsmall analogue).

Paper shape to verify: the average cut trends downward as R decreases
from 1.0, flattening out below ~0.5 — slower coarsening buys quality up
to a point.
"""

from repro.harness import ascii_chart, figure4_ratio_tradeoff


def test_fig4_ratio_tradeoff(benchmark, bench_params, save_table):
    ratios = (1.0, 0.8, 0.6, 0.4, 0.2)
    result = benchmark.pedantic(
        figure4_ratio_tradeoff,
        kwargs=dict(circuits=("avqsmall",),
                    scale=bench_params["scale"],
                    runs=bench_params["runs"],
                    ratios=ratios,
                    seed=bench_params["seed"],
                    jobs=bench_params["jobs"]),
        rounds=1, iterations=1)
    save_table(result, "fig4.txt")

    curve = {row[0]: row[1] for row in result.rows}
    chart = ascii_chart(list(curve), {"avqsmall": list(curve.values())},
                        width=50, height=10,
                        title="Figure 4: matching ratio vs average cut",
                        x_label="matching ratio R", y_label="avg cut")
    print("\n" + chart)
    print(f"avg-cut curve over R: {curve}")
    # Endpoint comparison: the slow-coarsening end must not be worse
    # than maximal matching by more than noise.
    assert curve[0.4] <= curve[1.0] * 1.08
