"""Table VI: ML_C under matching ratios R in {1.0, 0.5, 0.33}.

Same sweep as Table V with the CLIP refinement engine; the paper notes
the gap between ML_F and ML_C narrows as R decreases (extra levels give
an inferior engine more opportunities).
"""

from statistics import mean

from repro.harness import table6_mlc_ratio


def test_table6_mlc_ratio(benchmark, bench_params, save_table):
    result = benchmark.pedantic(
        table6_mlc_ratio,
        kwargs=dict(scale=bench_params["scale"],
                    runs=bench_params["runs"],
                    seed=bench_params["seed"],
                    jobs=bench_params["jobs"]),
        rounds=1, iterations=1)
    save_table(result, "table6.txt")

    avg = {r: mean(cells[f"R={r:g}"].avg_cut
                   for cells in result.cells.values())
           for r in (1.0, 0.5, 0.33)}
    cpu = {r: sum(cells[f"R={r:g}"].cpu_seconds
                  for cells in result.cells.values())
           for r in (1.0, 0.5, 0.33)}
    print(f"suite-mean avg cut by R: {avg}; total CPU by R: {cpu}")
    assert avg[0.5] <= avg[1.0] * 1.05
    assert cpu[0.33] > cpu[1.0]
