"""Service benchmark: cache-hit amortization and request coalescing.

Boots a real ``repro serve`` daemon (subprocess, port 0, ledger off)
and measures, over the wire:

* **cold miss** — first-ever request per (circuit, seed): pays netlist
  parse + a full portfolio execution;
* **cache hit** — the same requests repeated: served from the
  fingerprint-keyed result cache without touching the runtime.
  Cold and hit samples for the speedup contract are *interleaved*
  (``COLD_ROUNDS`` fresh-key executions spread through the hit
  stream), so minute-scale machine drift hits both populations alike;
* **coalescing** — a burst of identical concurrent requests on a fresh
  key: the executed-portfolio counter from ``/metrics`` shows the whole
  burst collapsed into one execution;
* **overload** — a second daemon with a shallow lane
  (``--max-queued 2``) under open-loop load arriving faster than it
  can serve: the shed fraction and the accepted requests' p50/p99.

Asserted contracts (the service's acceptance criteria):

* hit p50 is at least ``MIN_SPEEDUP``× lower than cold p50;
* an N-wide identical burst executes exactly 1 portfolio;
* hit payloads are byte-identical to their cold counterparts
  (minus the ``cached`` annotation itself);
* the daemon's own ``repro_service_latency_seconds`` histogram tells
  the same story as a client-side stopwatch: scraped p50/p99 agree
  with the client-measured hit-path quantiles within 20%;
* under saturation the daemon sheds (some 429s) instead of queueing
  without bound, and accepted p99 stays ≤ 2× the request deadline.

The report is printed and written to ``BENCH_service.json`` at the
repo root.  Run directly (``python benchmarks/bench_service.py``) or
via pytest.  Knobs: ``REPRO_BENCH_SERVICE_SCALE`` (circuit scale,
default 0.2), ``REPRO_BENCH_SERVICE_HITS`` (hit repeats per key,
default 20), ``REPRO_BENCH_SERVICE_BURST`` (burst width, default 8),
``REPRO_BENCH_SERVICE_OVERLOAD_N`` (overload request count, default
24), ``REPRO_BENCH_SERVICE_QUANTILE_N`` (hit samples for the
histogram-agreement check, default 3000).
"""

import concurrent.futures
import json
import os
import platform
import signal
import statistics
import subprocess
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro.service import ServiceClient, ServiceError  # noqa: E402

SCALE = float(os.environ.get("REPRO_BENCH_SERVICE_SCALE", "0.2"))
HIT_REPEATS = int(os.environ.get("REPRO_BENCH_SERVICE_HITS", "20"))
BURST = int(os.environ.get("REPRO_BENCH_SERVICE_BURST", "8"))
CIRCUITS = ("primary1", "primary2", "bm1")
RUNS_PER_REQUEST = 2
MIN_SPEEDUP = 50.0
#: Hit samples driven into the latency histogram before comparing its
#: interpolated quantiles against the client's exact stopwatch ones.
#: Also sized so the handful of cold executions sharing the
#: ``endpoint="partition"`` series cannot reach the p99 rank.
QUANTILE_N = int(os.environ.get("REPRO_BENCH_SERVICE_QUANTILE_N", "3000"))
QUANTILE_TOLERANCE = 0.20
#: Fresh-key cold executions interleaved with the hit stream (below).
COLD_ROUNDS = 12
OUTPUT = _ROOT / "BENCH_service.json"

# -- overload scenario knobs ------------------------------------------
OVERLOAD_N = int(os.environ.get("REPRO_BENCH_SERVICE_OVERLOAD_N", "24"))
OVERLOAD_DEADLINE_MS = 10_000
OVERLOAD_MAX_QUEUED = 2
#: Open-loop arrival gap — far faster than the service rate for a
#: full-scale mlc portfolio, so the lane must shed.
OVERLOAD_ARRIVAL_S = 0.01


def _request_body(circuit: str, seed: int, netlist_seed: int = 1) -> dict:
    return {"netlist": {"generate": {"name": circuit, "scale": SCALE,
                                     "seed": netlist_seed}},
            "algorithm": "mlc", "runs": RUNS_PER_REQUEST, "seed": seed}


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _start_server(*extra_args: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_ROOT / "src")
    env["REPRO_LEDGER"] = "off"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
        text=True)
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return proc, int(line.rstrip().rsplit(":", 1)[1])


def _timed(client: ServiceClient, body: dict):
    start = time.perf_counter()
    payload = client.partition(body)
    return time.perf_counter() - start, payload


def run_bench() -> dict:
    proc, port = _start_server()
    try:
        with ServiceClient("127.0.0.1", port, timeout=600) as client:
            report = _run_against(client, port)
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
    report["meta"]["server_exit_code"] = proc.returncode

    # -- overload: its own daemon with a deliberately shallow lane ----
    proc, port = _start_server(
        "--max-queued", str(OVERLOAD_MAX_QUEUED),
        "--deadline-ms", str(OVERLOAD_DEADLINE_MS),
        "--breaker-failures", "1000")
    try:
        report["overload"] = _run_overload(port)
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
    report["overload"]["server_exit_code"] = proc.returncode
    return report


def _run_overload(port: int) -> dict:
    """Open-loop saturation: fire requests faster than the daemon can
    serve them and measure what it sheds vs. what it serves, and how
    long the accepted ones take."""

    def one(i: int):
        # Distinct (threshold, seed) per request defeats the result
        # cache, coalescing, and batching: every accepted request
        # costs a real portfolio execution.
        body = {"netlist": {"generate": {"name": "primary1",
                                         "scale": 1.0, "seed": 1}},
                "algorithm": "mlc", "runs": 4, "seed": i,
                "threshold": 20 + i}
        with ServiceClient("127.0.0.1", port, timeout=60,
                           retries=0) as client:
            start = time.perf_counter()
            try:
                payload = client.partition(body)
                return ("ok", time.perf_counter() - start,
                        bool(payload.get("degraded")))
            except ServiceError as exc:
                return (exc.status, time.perf_counter() - start, False)

    with concurrent.futures.ThreadPoolExecutor(OVERLOAD_N) as pool:
        futures = []
        wall_start = time.perf_counter()
        for i in range(OVERLOAD_N):
            futures.append(pool.submit(one, i))
            time.sleep(OVERLOAD_ARRIVAL_S)
        outcomes = [f.result() for f in futures]
        wall_s = time.perf_counter() - wall_start

    accepted = [o for o in outcomes if o[0] == "ok"]
    shed = [o for o in outcomes if o[0] == 429]
    other = [o for o in outcomes if o[0] not in ("ok", 429)]
    latencies = [o[1] for o in accepted] or [0.0]
    return {
        "requests": OVERLOAD_N,
        "arrival_gap_s": OVERLOAD_ARRIVAL_S,
        "max_queued": OVERLOAD_MAX_QUEUED,
        "deadline_ms": OVERLOAD_DEADLINE_MS,
        "accepted": len(accepted),
        "shed_429": len(shed),
        "other_errors": len(other),
        "shed_fraction": round(len(shed) / OVERLOAD_N, 3),
        "degraded_responses": sum(1 for o in accepted if o[2]),
        "accepted_p50_s": round(_percentile(latencies, 0.50), 6),
        "accepted_p99_s": round(_percentile(latencies, 0.99), 6),
        "wall_s": round(wall_s, 6),
    }


def _run_against(client: ServiceClient, port: int) -> dict:
    rows = []
    cold_samples = []
    hit_samples = []
    for circuit in CIRCUITS:
        body = _request_body(circuit, seed=0)
        cold_s, cold_payload = _timed(client, body)
        assert not cold_payload["cached"]
        cold_samples.append(cold_s)
        times = []
        for _ in range(HIT_REPEATS):
            hit_s, hit_payload = _timed(client, body)
            assert hit_payload["cached"]
            # A hit is the same result, not a lookalike: everything
            # but the per-request annotations (cache flags and the
            # correlation ids, which are new on every request) must
            # match the cold payload.
            volatile = ("cached", "coalesced", "request_id", "trace_id")
            stable = {k: v for k, v in hit_payload.items()
                      if k not in volatile}
            cold_stable = {k: v for k, v in cold_payload.items()
                           if k not in volatile}
            assert stable == cold_stable, f"cache served a different " \
                f"payload for {circuit}"
            times.append(hit_s)
        hit_samples.extend(times)
        rows.append({
            "circuit": circuit,
            "min_cut": cold_payload["min_cut"],
            "fingerprint": cold_payload["fingerprint"],
            "cold_s": round(cold_s, 6),
            "hit_p50_s": round(_percentile(times, 0.50), 6),
            "hit_p99_s": round(_percentile(times, 0.99), 6),
            "speedup_p50": round(cold_s / _percentile(times, 0.50), 1),
        })

    # -- interleaved cold/hit sampling --------------------------------
    # The speedup contract compares quantiles of two populations, so
    # both must be sampled across the *same* wall-clock span — the
    # bench_obs_overhead lesson: minute-scale machine drift otherwise
    # lands entirely on whichever side happens to run last, and a
    # 3-sample cold p50 taken in one instant is weather, not signal.
    # Each round runs one fresh-key cold execution and a block of
    # cache hits; the hit stream doubles as the ~QUANTILE_N-strong
    # population for the histogram-agreement check below.
    hit_bodies = [_request_body(c, seed=0) for c in CIRCUITS]
    per_round = max(1, (QUANTILE_N - len(hit_samples)) // COLD_ROUNDS)
    for r in range(COLD_ROUNDS):
        # A *true* cold each round: a never-seen generated netlist, so
        # the request pays generation + parse + execution — varying
        # only the partition seed would ride the daemon's netlist
        # cache and undercount the cold path.
        cold_body = _request_body(CIRCUITS[r % len(CIRCUITS)],
                                  seed=1000 + r, netlist_seed=1000 + r)
        cold_s, cold_payload = _timed(client, cold_body)
        assert not cold_payload["cached"]
        cold_samples.append(cold_s)
        for i in range(per_round):
            hit_s, hit_payload = _timed(
                client, hit_bodies[i % len(hit_bodies)])
            assert hit_payload["cached"]
            hit_samples.append(hit_s)

    # -- scraped histogram vs client stopwatch ------------------------
    # The daemon's admission-to-response histogram must tell the same
    # story as the client's stopwatch: compare the PromQL-style
    # interpolated scrape quantiles against the exact client-side
    # order statistics over every partition request timed above.
    stopwatch = hit_samples
    scrape_p50 = client.histogram_quantile(
        "repro_service_latency_seconds", 0.50, endpoint="partition")
    scrape_p99 = client.histogram_quantile(
        "repro_service_latency_seconds", 0.99, endpoint="partition")
    client_p50 = _percentile(stopwatch, 0.50)
    client_p99 = _percentile(stopwatch, 0.99)
    agreement = {
        "samples": len(stopwatch),
        "tolerance": QUANTILE_TOLERANCE,
        "scrape_p50_s": round(scrape_p50, 6),
        "client_p50_s": round(client_p50, 6),
        "p50_ratio": round(scrape_p50 / client_p50, 3),
        "scrape_p99_s": round(scrape_p99, 6),
        "client_p99_s": round(client_p99, 6),
        "p99_ratio": round(scrape_p99 / client_p99, 3),
    }

    # -- coalescing burst (fresh key so the cache cannot answer) ------
    executed_before = client.metric_value(
        "repro_service_executed_portfolios_total")
    burst_body = _request_body(CIRCUITS[0], seed=4242)
    with concurrent.futures.ThreadPoolExecutor(BURST) as pool:
        # One client per thread: each holds its own socket, so the
        # requests genuinely overlap on the server.
        def one(_):
            with ServiceClient("127.0.0.1", port, timeout=600) as c:
                return c.partition(burst_body)
        burst_start = time.perf_counter()
        payloads = list(pool.map(one, range(BURST)))
        burst_s = time.perf_counter() - burst_start
    executed_after = client.metric_value(
        "repro_service_executed_portfolios_total")
    burst_executed = int(executed_after - executed_before)
    fingerprints = {p["fingerprint"] for p in payloads}
    coalesced_count = sum(bool(p["coalesced"]) for p in payloads)
    cache_hits = sum(bool(p["cached"]) for p in payloads)

    cold_p50 = _percentile(cold_samples, 0.50)
    hit_p50 = _percentile(hit_samples, 0.50)
    return {
        "meta": {
            "scale": SCALE,
            "runs_per_request": RUNS_PER_REQUEST,
            "hit_repeats": HIT_REPEATS,
            "cold_rounds": COLD_ROUNDS,
            "quantile_samples": QUANTILE_N,
            "burst": BURST,
            "algorithm": "mlc",
            "python": platform.python_version(),
            "contract": f"hit p50 >= {MIN_SPEEDUP:.0f}x lower than cold "
                        f"p50; identical {BURST}-wide burst executes "
                        "exactly 1 portfolio; scraped p50/p99 within "
                        f"{QUANTILE_TOLERANCE:.0%} of client-measured",
        },
        "results": rows,
        "latency_agreement": agreement,
        "coalescing": {
            "burst": BURST,
            "executed_portfolios": burst_executed,
            "coalesced_responses": coalesced_count,
            "cache_hit_responses": cache_hits,
            "distinct_fingerprints": len(fingerprints),
            "burst_wall_s": round(burst_s, 6),
        },
        "summary": {
            "cold_p50_s": round(cold_p50, 6),
            "cold_p99_s": round(_percentile(cold_samples, 0.99), 6),
            "hit_p50_s": round(hit_p50, 6),
            "hit_p99_s": round(_percentile(hit_samples, 0.99), 6),
            "speedup_p50": round(cold_p50 / hit_p50, 1),
        },
    }


def print_report(report: dict) -> None:
    meta = report["meta"]
    print(f"\npartition service (scale={meta['scale']}, "
          f"runs/request={meta['runs_per_request']}, "
          f"{meta['hit_repeats']} hit repeats)")
    print(f"{'circuit':>10} {'cut':>5} {'cold':>9} {'hit p50':>9} "
          f"{'hit p99':>9} {'speedup':>8}")
    for r in report["results"]:
        print(f"{r['circuit']:>10} {r['min_cut']:5d} {r['cold_s']:9.4f} "
              f"{r['hit_p50_s']:9.5f} {r['hit_p99_s']:9.5f} "
              f"{r['speedup_p50']:7.0f}x")
    s = report["summary"]
    print(f"overall: cold p50 {s['cold_p50_s']:.4f}s, hit p50 "
          f"{s['hit_p50_s']:.5f}s -> {s['speedup_p50']:.0f}x")
    a = report["latency_agreement"]
    print(f"histogram agreement ({a['samples']} hit samples): scrape "
          f"p50 {1e3 * a['scrape_p50_s']:.3f}ms vs client "
          f"{1e3 * a['client_p50_s']:.3f}ms (x{a['p50_ratio']:.2f}), "
          f"p99 {1e3 * a['scrape_p99_s']:.3f}ms vs "
          f"{1e3 * a['client_p99_s']:.3f}ms (x{a['p99_ratio']:.2f})")
    c = report["coalescing"]
    print(f"coalescing: burst of {c['burst']} identical requests -> "
          f"{c['executed_portfolios']} executed portfolio(s), "
          f"{c['coalesced_responses']} coalesced + "
          f"{c['cache_hit_responses']} cache-hit responses in "
          f"{c['burst_wall_s']:.3f}s")
    o = report["overload"]
    print(f"overload: {o['requests']} requests at 1/{o['arrival_gap_s']}s "
          f"against max_queued={o['max_queued']} -> "
          f"{o['accepted']} accepted / {o['shed_429']} shed "
          f"({100 * o['shed_fraction']:.0f}%), accepted p50 "
          f"{o['accepted_p50_s']:.3f}s p99 {o['accepted_p99_s']:.3f}s "
          f"(deadline {o['deadline_ms']}ms)")


def test_bench_service():
    report = run_bench()
    print_report(report)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    summary = report["summary"]
    assert summary["speedup_p50"] >= MIN_SPEEDUP, (
        f"cache-hit p50 {summary['hit_p50_s']:.5f}s is only "
        f"{summary['speedup_p50']:.1f}x lower than cold p50 "
        f"{summary['cold_p50_s']:.4f}s (contract: {MIN_SPEEDUP:.0f}x)")
    agreement = report["latency_agreement"]
    for q in ("p50", "p99"):
        ratio = agreement[f"{q}_ratio"]
        assert abs(ratio - 1.0) <= QUANTILE_TOLERANCE, (
            f"scraped {q} {agreement[f'scrape_{q}_s']:.6f}s disagrees "
            f"with client-measured {agreement[f'client_{q}_s']:.6f}s by "
            f"more than {QUANTILE_TOLERANCE:.0%} "
            f"(ratio {ratio:.3f}, {agreement['samples']} samples)")
    coalescing = report["coalescing"]
    assert coalescing["executed_portfolios"] == 1, (
        f"identical {coalescing['burst']}-wide burst executed "
        f"{coalescing['executed_portfolios']} portfolios (contract: 1)")
    assert coalescing["distinct_fingerprints"] == 1
    assert report["meta"]["server_exit_code"] == 0
    overload = report["overload"]
    assert overload["shed_429"] > 0, (
        "saturating load produced no 429s — the lane queued without "
        "bound instead of shedding")
    assert overload["accepted"] > 0
    assert overload["other_errors"] == 0, overload
    assert overload["accepted_p99_s"] <= \
        2.0 * overload["deadline_ms"] / 1000.0, (
        f"accepted p99 {overload['accepted_p99_s']:.3f}s exceeds 2x the "
        f"{overload['deadline_ms']}ms deadline")
    assert overload["server_exit_code"] == 0


if __name__ == "__main__":
    test_bench_service()
