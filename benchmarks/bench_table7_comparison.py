"""Table VII: ML_C (R = 0.5) against other bipartitioners.

Reimplemented comparators (LSMC, spectral+FM, PROP, two-phase FM) run
live; the paper's published literature columns are printed alongside.
Paper shape to verify: ML_C's min cut beats every reimplemented
comparator on the suite average.
"""

from repro.harness import table7_comparison


def test_table7_comparison(benchmark, bench_params, save_table):
    runs = max(2, bench_params["runs"])
    result = benchmark.pedantic(
        table7_comparison,
        kwargs=dict(scale=bench_params["scale"],
                    runs=runs,
                    runs_small=max(1, runs // 2),
                    lsmc_descents=8,
                    seed=bench_params["seed"],
                    jobs=bench_params["jobs"]),
        rounds=1, iterations=1)
    save_table(result, "table7.txt")

    improvement_row = result.rows[-2]  # full-runs improvement row
    labels = result.headers[3:7]
    values = improvement_row[3:7]
    print("% improvement of MLC over reimplemented comparators: "
          + ", ".join(f"{l} {v}" for l, v in zip(labels, values)))
    # ML_C should improve on (or at worst tie) each reimplemented
    # comparator's suite-average min cut.
    assert all(v is None or v >= -3.0 for v in values)
