"""Table II: FM with LIFO vs FIFO vs RANDOM gain buckets.

Paper shape to verify: LIFO's average cut is far below FIFO's; RANDOM
is on par with (or slightly better than) LIFO.
"""

from statistics import mean

from repro.harness import table2_tiebreak


def test_table2_tiebreak(benchmark, bench_params, save_table):
    result = benchmark.pedantic(
        table2_tiebreak,
        kwargs=dict(scale=bench_params["scale"],
                    runs=bench_params["runs"],
                    seed=bench_params["seed"],
                    jobs=bench_params["jobs"]),
        rounds=1, iterations=1)
    save_table(result, "table2.txt")

    lifo_avg = mean(cells["LIFO"].avg_cut for cells in result.cells.values())
    fifo_avg = mean(cells["FIFO"].avg_cut for cells in result.cells.values())
    print(f"suite-mean avg cut: LIFO {lifo_avg:.1f} vs FIFO {fifo_avg:.1f} "
          f"(paper: LIFO wins decisively)")
    assert lifo_avg < fifo_avg
