"""Chaos sweep: the benchmark suite under a 10% injected fault rate.

Runs the paper's multi-start protocol over a slice of the Table I mini
suite (through ``golem3``, the largest of the quick-bench circuits)
twice: once clean, once with a deterministic
:class:`~repro.faults.FaultPlan` injecting crashes, worker exits, and
silent result corruption into ~10% of the starts — with verification,
retries, a survival quorum, and a streaming checkpoint all armed, i.e.
the full robustness stack from DESIGN.md section 9.

What to expect: because rate-based faults stop firing after the first
attempt (``FaultPlan.attempts=1``) and every injected kind here is
retryable, each faulted start recovers on retry with its original seed
— so the chaos sweep must finish with *byte-identical cut statistics*
to the clean sweep.  That is the assertion: injected faults cost wall
clock, never results.  ``BENCH_chaos.json`` (written at the repo root,
like ``BENCH_kernels.json``) records the per-cell cuts plus how many
faults were scheduled and survived.

Run directly (``python benchmarks/bench_chaos.py``) or via pytest
(marker ``chaos``).  ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_RUNS`` /
``REPRO_BENCH_SEED`` / ``REPRO_BENCH_JOBS`` resize it, and
``REPRO_BENCH_FAULT_RATE`` overrides the 10% rate.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.faults import (FAULT_CORRUPT_ASSIGNMENT, FAULT_CORRUPT_CUT,
                          FAULT_EXIT, FAULT_RAISE, FaultPlan)
from repro.fm import fm_bipartition
from repro.harness import Algorithm, run_matrix
from repro.hypergraph import load_suite

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "5"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
FAULT_RATE = float(os.environ.get("REPRO_BENCH_FAULT_RATE", "0.10"))

#: Small / medium / large thirds of the mini suite, ending at golem3.
CIRCUIT_NAMES = ["balu", "struct", "golem3"]

#: Every kind here is retryable (hangs are excluded: a benchmark should
#: not spend its budget sleeping), so retried starts recover fully.
PLAN = FaultPlan(seed=SEED + 1, rate=FAULT_RATE,
                 kinds=(FAULT_RAISE, FAULT_EXIT, FAULT_CORRUPT_CUT,
                        FAULT_CORRUPT_ASSIGNMENT))


def _algorithm() -> Algorithm:
    return Algorithm("FM", lambda hg, s: fm_bipartition(hg, seed=s))


@pytest.mark.chaos
def test_chaos_sweep():
    circuits = load_suite(CIRCUIT_NAMES, scale=SCALE, seed=SEED)
    RESULTS_DIR.mkdir(exist_ok=True)
    checkpoint = RESULTS_DIR / "BENCH_chaos.ckpt.jsonl"
    if checkpoint.exists():
        checkpoint.unlink()  # a fresh benchmark, not a resume

    t0 = time.perf_counter()
    clean = run_matrix([_algorithm()], circuits, runs=RUNS, seed=SEED,
                       jobs=JOBS)
    clean_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    chaos = run_matrix([_algorithm()], circuits, runs=RUNS, seed=SEED,
                       jobs=JOBS, faults=PLAN, verify=True, retries=2,
                       min_ok_fraction=0.5, checkpoint=checkpoint)
    chaos_wall = time.perf_counter() - t0

    scheduled = sum(1 for hg in circuits for i in range(RUNS)
                    if PLAN.decide(i, 1) is not None)
    assert scheduled >= 1, "vacuous chaos run: the plan never fired"
    report = {"scale": SCALE, "runs": RUNS, "seed": SEED, "jobs": JOBS,
              "fault_rate": FAULT_RATE, "scheduled_faults": scheduled,
              "clean_wall_seconds": round(clean_wall, 3),
              "chaos_wall_seconds": round(chaos_wall, 3),
              "cells": {}}

    for hg in circuits:
        clean_cell = clean[hg.name]["FM"]
        chaos_cell = chaos[hg.name]["FM"]
        # The headline contract: every faulted start recovered on retry
        # with its original seed, so the surviving statistics are the
        # clean sweep's statistics, exactly.
        assert chaos_cell.cuts == clean_cell.cuts, hg.name
        assert chaos_cell.failures == 0, hg.name
        report["cells"][hg.name] = {
            "cuts": chaos_cell.cuts,
            "min_cut": chaos_cell.min_cut,
            "avg_cut": round(chaos_cell.avg_cut, 2),
            "failures": chaos_cell.failures,
        }

    # The checkpoint streamed every finished start of the chaos sweep.
    lines = checkpoint.read_text().splitlines()
    assert len(lines) == 1 + RUNS * len(circuits)

    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nchaos sweep: {scheduled} faults over "
          f"{RUNS * len(circuits)} starts, statistics identical to the "
          f"clean sweep ({chaos_wall:.2f}s vs {clean_wall:.2f}s clean); "
          f"wrote {OUTPUT}")


if __name__ == "__main__":
    test_chaos_sweep()
