"""Runtime subsystem speedup: one multi-start cell, three ways.

One (algorithm, circuit) cell of the paper's multi-start protocol
(Table III's layout: N runs, min/avg cut plus time), executed

1. the historical way — serial, every start coarsens from scratch;
2. with hierarchy reuse — coarsen once, refine N times, still serial;
3. with hierarchy reuse fanned out over a 4-worker pool.

The cut lists of (2) and (3) are identical by the runtime's determinism
contract.  (1) differs slightly: its starts each coarsen with their own
seed, which is exactly the work being amortised away.

What to expect: reuse saves the per-start coarsening (~10-15% of an
MLC(R=0.5) run on these generated circuits, partially offset by the
shared hierarchy costing a few extra refinement passes); the worker
pool multiplies throughput by the core count.  The strict
parallel-beats-serial assertion therefore only applies on multicore
hosts — on a single available core the pool is pure scheduling overhead
and the benchmark instead bounds that overhead.

Run directly (``python benchmarks/bench_runtime_speedup.py``) or via
pytest.  ``REPRO_BENCH_MODULES``/``REPRO_BENCH_SPEEDUP_RUNS`` resize it.
"""

import os
import time

from repro.core.config import MLConfig
from repro.core.ml import ml_bipartition
from repro.harness.runner import Algorithm, run_cell
from repro.hypergraph import hierarchical_circuit
from repro.runtime import HierarchyCache, ml_portfolio

MODULES = int(os.environ.get("REPRO_BENCH_MODULES", "2400"))
RUNS = int(os.environ.get("REPRO_BENCH_SPEEDUP_RUNS", "8"))
JOBS = 4
SEED = 0
CONFIG = MLConfig(engine="clip", matching_ratio=0.5)


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def test_runtime_speedup():
    hg = hierarchical_circuit(MODULES, int(MODULES * 1.2), seed=3,
                              name=f"gen{MODULES}")
    algorithm = Algorithm(
        "MLC", lambda h, s: ml_bipartition(h, config=CONFIG, seed=s))

    naive_wall, naive = _timed(
        lambda: run_cell(algorithm, hg, RUNS, seed=SEED))
    reuse_wall, reuse = _timed(
        lambda: ml_portfolio(hg, RUNS, config=CONFIG, seed=SEED, jobs=1,
                             cache=HierarchyCache()))
    par_wall, par = _timed(
        lambda: ml_portfolio(hg, RUNS, config=CONFIG, seed=SEED, jobs=JOBS,
                             cache=HierarchyCache()))

    print(f"\ncircuit: {hg.name} ({hg.num_modules} modules, "
          f"{hg.num_nets} nets), {RUNS} MLC(R=0.5) starts")
    print(f"serial, coarsen per start:  {naive_wall:6.2f}s wall "
          f"(min cut {naive.min_cut})")
    print(f"serial, hierarchy reuse:    {reuse_wall:6.2f}s wall "
          f"(min cut {min(reuse.cuts)})")
    print(f"{JOBS} workers, hierarchy reuse: {par_wall:6.2f}s wall "
          f"(min cut {min(par.cuts)})")
    cores = len(os.sched_getaffinity(0)) if hasattr(
        os, "sched_getaffinity") else (os.cpu_count() or 1)
    print(f"speedup vs historical: reuse {naive_wall / reuse_wall:.2f}x, "
          f"reuse+workers {naive_wall / par_wall:.2f}x "
          f"({cores} core(s) available)")

    assert par.cuts == reuse.cuts  # determinism across worker counts
    assert len(par.cuts) == RUNS
    if cores >= 2:
        # The subsystem's claim: with real cores, the portfolio path
        # beats the historical serial rebuild-every-start path outright.
        assert par_wall < naive_wall
    else:
        # Single core: no parallel win is physically possible; require
        # the pool's overhead to stay modest instead.
        assert par_wall < naive_wall * 1.5


if __name__ == "__main__":
    test_runtime_speedup()
