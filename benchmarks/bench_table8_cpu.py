"""Table VIII: CPU-time comparison.

Our reimplemented algorithms are timed on this host; published Sparc-
era seconds are shown alongside for the same circuit names.  Paper
shape to verify: PROP costs a multiple of FM (the paper reports 4-8x),
and LSMC with d descents costs roughly d FM runs.
"""

from repro.harness import table8_cpu


def test_table8_cpu(benchmark, bench_params, save_table):
    result = benchmark.pedantic(
        table8_cpu,
        kwargs=dict(scale=bench_params["scale"],
                    runs=bench_params["runs"],
                    lsmc_descents=8,
                    seed=bench_params["seed"],
                    jobs=bench_params["jobs"]),
        rounds=1, iterations=1)
    save_table(result, "table8.txt")

    fm = sum(cells["FM"].cpu_seconds for cells in result.cells.values())
    prop = sum(cells["PROP"].cpu_seconds for cells in result.cells.values())
    lsmc = sum(cells["LSMC"].cpu_seconds for cells in result.cells.values())
    print(f"total CPU: FM {fm:.1f}s, PROP {prop:.1f}s, LSMC {lsmc:.1f}s")
    assert prop > fm            # non-discrete gains cost real time
    assert lsmc > 3 * fm        # 8 descents >> 1 FM run
