"""Observability overhead benchmark: the zero-cost-when-disabled contract.

Times end-to-end MLc (``ml_bipartition``, engine=clip) on two suite
circuits in three configurations:

* ``baseline``  — the pre-instrumentation runtime.  Instrumentation
  cannot be removed retroactively, so the baseline was measured on the
  commit *before* the observability layer landed (same circuits, same
  scale/seed/repeats protocol) and is pinned below; set
  ``REPRO_BENCH_OBS_BASELINE`` to a JSON file of
  ``{circuit: {"seconds": s, "cut": c}}`` to re-pin it on new hardware.
* ``disabled``  — instrumentation shipped but dormant (the no-op
  singletons), the configuration every ordinary run pays for.
* ``enabled``   — full tracing to a file plus metrics collection.

Asserted contracts: the *disabled* aggregate runtime stays within 3%
of the pinned baseline (plus a small absolute epsilon so timer noise
on sub-100ms circuits cannot flake CI), and the cuts are identical in
all three configurations — observability never perturbs results.

Every cell is best-of-``REPEATS`` wall clock.  The report is printed
and written to ``BENCH_obs.json`` at the repo root.

Run directly (``python benchmarks/bench_obs_overhead.py``) or via
pytest.  Knobs: ``REPRO_BENCH_OBS_REPEATS`` (default 5),
``REPRO_BENCH_OBS_BASELINE`` (baseline JSON override).
"""

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro import MLConfig, ml_bipartition
from repro.hypergraph import load_circuit
from repro.obs import collecting_metrics, tracing

SCALE = 0.05
SEED = 7
REPEATS = int(os.environ.get("REPRO_BENCH_OBS_REPEATS", "5"))
CIRCUITS = ("avqsmall", "golem3")
CONFIG = MLConfig(engine="clip")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: Pre-instrumentation runtimes, measured at commit a601208 (the last
#: commit before the observability layer) with this file's exact
#: protocol: MLc engine=clip, scale 0.05, load seed 0, run seed 7,
#: best of 5.  The cuts double as a cross-commit determinism check.
PINNED_BASELINE = {
    "avqsmall": {"seconds": 0.087026, "cut": 68},
    "golem3": {"seconds": 0.794041, "cut": 299},
}

#: Relative overhead budget for the disabled configuration, plus an
#: absolute epsilon covering timer noise across the whole suite.
MAX_DISABLED_OVERHEAD = 0.03
ABS_EPSILON_S = 0.01


def _baseline():
    override = os.environ.get("REPRO_BENCH_OBS_BASELINE")
    if override:
        return json.loads(Path(override).read_text()), "env override"
    return PINNED_BASELINE, "pinned (pre-instrumentation commit)"


def _best_of(fn):
    fn()  # warm the per-netlist caches (CSR views)
    best = float("inf")
    value = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_bench():
    baseline, baseline_source = _baseline()
    rows = []
    for name in CIRCUITS:
        hg = load_circuit(name, scale=SCALE, seed=0)

        def mlc():
            result = ml_bipartition(hg, config=CONFIG, seed=SEED)
            return result.cut, result.partition.assignment

        t_off, v_off = _best_of(mlc)

        events = []
        with tempfile.TemporaryDirectory() as tmp:
            trace_path = os.path.join(tmp, f"{name}.trace.jsonl")

            def traced():
                with tracing(trace_path), collecting_metrics():
                    return mlc()

            t_on, v_on = _best_of(traced)
            from repro.obs import read_trace
            events = list(read_trace(trace_path))

        assert v_on == v_off, f"tracing changed the result on {name}"
        base = baseline.get(name)
        row = {
            "circuit": name,
            "modules": hg.num_modules,
            "cut": v_off[0],
            "baseline_s": base["seconds"] if base else None,
            "disabled_s": round(t_off, 6),
            "enabled_s": round(t_on, 6),
            "enabled_overhead_pct":
                round(100.0 * (t_on - t_off) / t_off, 2),
            "trace_events": len(events),
        }
        if base:
            row["disabled_overhead_pct"] = round(
                100.0 * (t_off - base["seconds"]) / base["seconds"], 2)
            assert v_off[0] == base["cut"], (
                f"{name}: cut {v_off[0]} != pre-instrumentation cut "
                f"{base['cut']} — instrumentation perturbed the RNG stream")
        rows.append(row)

    total_base = sum(r["baseline_s"] for r in rows if r["baseline_s"])
    total_off = sum(r["disabled_s"] for r in rows if r["baseline_s"])
    report = {
        "meta": {
            "scale": SCALE, "seed": SEED, "repeats": REPEATS,
            "config": "MLc (engine=clip)",
            "baseline_source": baseline_source,
            "python": platform.python_version(),
            "contract": f"disabled within {MAX_DISABLED_OVERHEAD:.0%} "
                        f"of baseline (+{ABS_EPSILON_S}s epsilon)",
        },
        "results": rows,
        "summary": {
            "baseline_total_s": round(total_base, 6),
            "disabled_total_s": round(total_off, 6),
            "disabled_overhead_pct":
                round(100.0 * (total_off - total_base) / total_base, 2)
                if total_base else None,
        },
    }
    return report


def print_report(report):
    print(f"\nobservability overhead (MLc, scale={report['meta']['scale']}, "
          f"best of {report['meta']['repeats']})")
    print(f"{'circuit':>10} {'baseline':>9} {'disabled':>9} "
          f"{'enabled':>9} {'off %':>7} {'on %':>7} {'events':>7}")
    for r in report["results"]:
        base = f"{r['baseline_s']:9.4f}" if r["baseline_s"] else "      n/a"
        offp = (f"{r['disabled_overhead_pct']:+7.1f}"
                if "disabled_overhead_pct" in r else "    n/a")
        print(f"{r['circuit']:>10} {base} {r['disabled_s']:9.4f} "
              f"{r['enabled_s']:9.4f} {offp} "
              f"{r['enabled_overhead_pct']:+7.1f} {r['trace_events']:7d}")
    s = report["summary"]
    if s["disabled_overhead_pct"] is not None:
        print(f"disabled total {s['disabled_total_s']:.4f}s vs baseline "
              f"{s['baseline_total_s']:.4f}s "
              f"({s['disabled_overhead_pct']:+.1f}%)")


def test_bench_obs_overhead():
    report = run_bench()
    print_report(report)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    summary = report["summary"]
    if summary["baseline_total_s"]:
        budget = (summary["baseline_total_s"] * (1 + MAX_DISABLED_OVERHEAD)
                  + ABS_EPSILON_S)
        assert summary["disabled_total_s"] <= budget, (
            f"disabled-instrumentation runtime "
            f"{summary['disabled_total_s']:.4f}s exceeds the "
            f"{MAX_DISABLED_OVERHEAD:.0%}+{ABS_EPSILON_S}s budget over the "
            f"{summary['baseline_total_s']:.4f}s baseline")


if __name__ == "__main__":
    test_bench_obs_overhead()
