"""Observability overhead benchmark: the zero-cost-when-disabled contract.

Times end-to-end MLc (``ml_bipartition``, engine=clip) on two suite
circuits in three configurations:

* ``baseline``  — the pre-instrumentation runtime.  Instrumentation
  cannot be removed retroactively, so the baseline was measured on the
  commit *before* the observability layer landed (same circuits, same
  scale/seed/repeats protocol) and is pinned below; set
  ``REPRO_BENCH_OBS_BASELINE`` to a JSON file of
  ``{circuit: {"seconds": s, "cut": c}}`` to re-pin it on new hardware.
* ``disabled``  — instrumentation shipped but dormant (the no-op
  singletons, memory profiling off, no sampler thread), the
  configuration every ordinary run pays for.
* ``enabled``   — full tracing to a file plus metrics collection.
* ``recorded``  — decision recording to a file (``--record``): every
  coarsening merge and refinement move written as compact JSONL.  The
  recorder rides the hot loop itself, so this cell is the price of a
  replayable flight recording; the *disabled* cell doubles as its
  dormancy check (``recorder().enabled`` must read off, keeping the
  uninstrumented CSR move loop on the fast path).
* ``profiled``  — everything on at once: tracing, metrics, the
  sampling wall profiler, and tracemalloc peak-memory capture — the
  ``repro serve --profile-dir`` configuration.  This cell is
  dominated by tracemalloc (which hooks every allocation, a
  documented ~10–30× slowdown on allocation-heavy code); the
  sampling profiler itself costs one stack walk per tick.  That
  asymmetry is *why* peak-memory capture rides the explicit
  ``--profile-dir`` opt-in rather than defaulting on.

Asserted contracts: the *disabled* aggregate runtime stays within 3%
of the pinned baseline (plus a small absolute epsilon so timer noise
on sub-100ms circuits cannot flake CI), the profiler switches are
verifiably dormant in the disabled configuration, and the cuts are
identical in every configuration — observability never perturbs
results.

Every cell is best-of-``REPEATS`` wall clock, and the disabled /
enabled variants are **interleaved**: each repeat times every variant
once, in round-robin order, before the next repeat begins.  Timing
them in separate batches (the original protocol) let slow machine-wide
drift — thermal throttling, a background indexer — land entirely on
one variant, which is how this report once showed *negative*
instrumentation overhead.  The min over interleaved repeats estimates
each variant's floor under the same ambient conditions, so the deltas
are attributable to the code, not the scheduler.

The report is printed and written to ``BENCH_obs.json`` at the repo
root.  Run directly (``python benchmarks/bench_obs_overhead.py``) or
via pytest.  Knobs: ``REPRO_BENCH_OBS_REPEATS`` (default 5),
``REPRO_BENCH_OBS_BASELINE`` (baseline JSON override).
"""

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro import MLConfig, ml_bipartition
from repro.hypergraph import load_circuit
from repro.obs import (SamplingProfiler, collecting_metrics,
                       enable_memory_profiling, memory_peak,
                       memory_profiling_enabled, read_record, recorder,
                       recording, tracing)

SCALE = 0.05
SEED = 7
REPEATS = int(os.environ.get("REPRO_BENCH_OBS_REPEATS", "5"))
CIRCUITS = ("avqsmall", "golem3")
CONFIG = MLConfig(engine="clip")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: Pre-instrumentation runtimes, measured at commit a601208 (the last
#: commit before the observability layer) with this file's protocol:
#: MLc engine=clip, scale 0.05, load seed 0, run seed 7.  Each value
#: is the lowest min-of-N observed across several alternating
#: pre/post-instrumentation batches — a *floor* estimate, deliberately
#: pinned tight so the reported disabled overhead cannot go negative
#: merely because the pin itself was a high-side jitter sample (which
#: is how this report once showed negative overheads).  The cuts
#: double as a cross-commit determinism check.
PINNED_BASELINE = {
    "avqsmall": {"seconds": 0.070500, "cut": 68},
    "golem3": {"seconds": 0.560000, "cut": 299},
}

#: Relative overhead budget for the disabled configuration.  The
#: baseline lives at another commit, so unlike the disabled/enabled
#: pair it cannot be interleaved — the comparison crosses process
#: batches, and at pin time *identical* code showed up to ~25%
#: batch-to-batch drift in its min-of-20 on this single-core VM.
#: ``JITTER_FRACTION`` grants exactly that measured allowance (plus a
#: small absolute epsilon for sub-100ms circuits); the contract still
#: catches the failure mode it exists for — instrumentation that is
#: accidentally live, or grows per-move work, costs far more than
#: scheduler drift.
MAX_DISABLED_OVERHEAD = 0.03
JITTER_FRACTION = 0.25
ABS_EPSILON_S = 0.01


def _baseline():
    override = os.environ.get("REPRO_BENCH_OBS_BASELINE")
    if override:
        return json.loads(Path(override).read_text()), "env override"
    return PINNED_BASELINE, "pinned (pre-instrumentation commit)"


def _time_interleaved(variants, repeats=None):
    """Best-of-``repeats`` wall clock per variant, interleaved.

    ``variants`` is ``[(name, fn), ...]``.  Each variant runs once
    unmeasured (warming the per-netlist caches), then every repeat
    times each variant once in round-robin order — so ambient drift
    hits all variants alike and the per-variant min is a fair floor
    estimate.  Returns ``{name: (best_seconds, value)}``.
    """
    best = {}
    values = {}
    for name, fn in variants:
        values[name] = fn()
        best[name] = float("inf")
    for _ in range(REPEATS if repeats is None else repeats):
        for name, fn in variants:
            start = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - start
            if elapsed < best[name]:
                best[name] = elapsed
            values[name] = value
    return {name: (best[name], values[name]) for name, _ in variants}


def run_bench():
    baseline, baseline_source = _baseline()
    rows = []
    for name in CIRCUITS:
        hg = load_circuit(name, scale=SCALE, seed=0)

        def mlc():
            result = ml_bipartition(hg, config=CONFIG, seed=SEED)
            return result.cut, result.partition.assignment

        with tempfile.TemporaryDirectory() as tmp:
            trace_path = os.path.join(tmp, f"{name}.trace.jsonl")
            prof_trace_path = os.path.join(tmp, f"{name}.prof.jsonl")
            record_path = os.path.join(tmp, f"{name}.record.jsonl")

            def dormant():
                # The disabled cell is also the dormancy check for the
                # profiling and recording layers: the switches must
                # read off (a live recorder would force every FM move
                # through the instrumented loop).
                assert not memory_profiling_enabled()
                assert not recorder().enabled
                return mlc()

            def traced():
                with tracing(trace_path), collecting_metrics():
                    return mlc()

            def recorded():
                with recording(record_path):
                    return mlc()

            def profiled():
                profiler = SamplingProfiler(interval_seconds=0.005)
                enable_memory_profiling(True)
                profiler.start()
                try:
                    with tracing(prof_trace_path), collecting_metrics():
                        with memory_peak() as peak:
                            value = mlc()
                finally:
                    profiler.stop()
                    enable_memory_profiling(False)
                assert peak.peak_bytes and peak.peak_bytes > 0
                return value

            timed = _time_interleaved([("disabled", dormant),
                                       ("enabled", traced),
                                       ("recorded", recorded),
                                       ("profiled", profiled)])
            t_off, v_off = timed["disabled"]
            t_on, v_on = timed["enabled"]
            t_rec, v_rec = timed["recorded"]
            t_prof, v_prof = timed["profiled"]
            from repro.obs import read_trace
            events = list(read_trace(trace_path))
            record_events = sum(1 for _ in read_record(record_path))

        assert v_on == v_off, f"tracing changed the result on {name}"
        assert v_rec == v_off, f"recording changed the result on {name}"
        assert v_prof == v_off, f"profiling changed the result on {name}"
        base = baseline.get(name)
        row = {
            "circuit": name,
            "modules": hg.num_modules,
            "cut": v_off[0],
            "baseline_s": base["seconds"] if base else None,
            "disabled_s": round(t_off, 6),
            "enabled_s": round(t_on, 6),
            "recorded_s": round(t_rec, 6),
            "profiled_s": round(t_prof, 6),
            "enabled_overhead_pct":
                round(100.0 * (t_on - t_off) / t_off, 2),
            "recorded_overhead_pct":
                round(100.0 * (t_rec - t_off) / t_off, 2),
            "profiled_overhead_pct":
                round(100.0 * (t_prof - t_off) / t_off, 2),
            "trace_events": len(events),
            "record_events": record_events,
        }
        if base:
            row["disabled_overhead_pct"] = round(
                100.0 * (t_off - base["seconds"]) / base["seconds"], 2)
            assert v_off[0] == base["cut"], (
                f"{name}: cut {v_off[0]} != pre-instrumentation cut "
                f"{base['cut']} — instrumentation perturbed the RNG stream")
        rows.append(row)

    total_base = sum(r["baseline_s"] for r in rows if r["baseline_s"])
    total_off = sum(r["disabled_s"] for r in rows if r["baseline_s"])
    report = {
        "meta": {
            "scale": SCALE, "seed": SEED, "repeats": REPEATS,
            "config": "MLc (engine=clip)",
            "baseline_source": baseline_source,
            "python": platform.python_version(),
            "contract": f"disabled within {MAX_DISABLED_OVERHEAD:.0%} "
                        f"of baseline (+{JITTER_FRACTION:.0%} "
                        f"cross-batch jitter, +{ABS_EPSILON_S}s epsilon)",
            "protocol": "interleaved min-of-repeats per variant",
        },
        "results": rows,
        "summary": {
            "baseline_total_s": round(total_base, 6),
            "disabled_total_s": round(total_off, 6),
            "disabled_overhead_pct":
                round(100.0 * (total_off - total_base) / total_base, 2)
                if total_base else None,
        },
    }
    return report


def print_report(report):
    print(f"\nobservability overhead (MLc, scale={report['meta']['scale']}, "
          f"best of {report['meta']['repeats']})")
    print(f"{'circuit':>10} {'baseline':>9} {'disabled':>9} "
          f"{'enabled':>9} {'recorded':>9} {'profiled':>9} {'off %':>7} "
          f"{'on %':>7} {'rec %':>7} {'prof %':>7} {'events':>7} "
          f"{'decs':>7}")
    for r in report["results"]:
        base = f"{r['baseline_s']:9.4f}" if r["baseline_s"] else "      n/a"
        offp = (f"{r['disabled_overhead_pct']:+7.1f}"
                if "disabled_overhead_pct" in r else "    n/a")
        print(f"{r['circuit']:>10} {base} {r['disabled_s']:9.4f} "
              f"{r['enabled_s']:9.4f} {r['recorded_s']:9.4f} "
              f"{r['profiled_s']:9.4f} {offp} "
              f"{r['enabled_overhead_pct']:+7.1f} "
              f"{r['recorded_overhead_pct']:+7.1f} "
              f"{r['profiled_overhead_pct']:+7.1f} "
              f"{r['trace_events']:7d} {r['record_events']:7d}")
    s = report["summary"]
    if s["disabled_overhead_pct"] is not None:
        print(f"disabled total {s['disabled_total_s']:.4f}s vs baseline "
              f"{s['baseline_total_s']:.4f}s "
              f"({s['disabled_overhead_pct']:+.1f}%)")


def test_bench_obs_overhead():
    report = run_bench()
    print_report(report)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    summary = report["summary"]
    if summary["baseline_total_s"]:
        budget = (summary["baseline_total_s"]
                  * (1 + MAX_DISABLED_OVERHEAD + JITTER_FRACTION)
                  + ABS_EPSILON_S)
        assert summary["disabled_total_s"] <= budget, (
            f"disabled-instrumentation runtime "
            f"{summary['disabled_total_s']:.4f}s exceeds the "
            f"{MAX_DISABLED_OVERHEAD:.0%}+{JITTER_FRACTION:.0%}"
            f"+{ABS_EPSILON_S}s budget over the "
            f"{summary['baseline_total_s']:.4f}s baseline")


if __name__ == "__main__":
    test_bench_obs_overhead()
