"""Table IX: 4-way partitioning comparisons.

ML_F quadrisection (R = 1.0, T = 100, sum-of-degrees gain) against the
GORDIAN quadratic-placement simulator, flat FM4/CLIP4, and 4-way LSMC.
Paper shape to verify: ML_F's minimum and average cuts beat GORDIAN's
split and the flat engines.
"""

from statistics import mean

from repro.harness import table9_quadrisection


def test_table9_quadrisection(benchmark, bench_params, save_table):
    result = benchmark.pedantic(
        table9_quadrisection,
        kwargs=dict(circuits=("primary2", "biomed"),
                    scale=bench_params["scale"],
                    runs=2,
                    lsmc_descents=3,
                    seed=bench_params["seed"],
                    jobs=bench_params["jobs"]),
        rounds=1, iterations=1)
    save_table(result, "table9.txt")

    ml = mean(cells["MLF4"].min_cut for cells in result.cells.values())
    gordian = mean(cells["GORDIAN"].min_cut
                   for cells in result.cells.values())
    fm4 = mean(cells["FM4"].min_cut for cells in result.cells.values())
    print(f"suite-mean min cut: MLF4 {ml:.1f}, GORDIAN {gordian:.1f}, "
          f"FM4 {fm4:.1f}")
    assert ml < gordian
    assert ml <= fm4
